(** Tests over the 13 benchmark kernels: every workload builds a verified
    program, runs fault-free on both inputs, produces a sane output, and is
    semantics-preserved by every protection technique.  Codec pairs are
    additionally checked for round-trip quality. *)

open Workloads

let all = Registry.all

let foreach_workload f = List.iter (fun (w : Workload.t) -> f w) all

let test_registry () =
  Alcotest.(check int) "13 benchmarks" 13 (List.length all);
  let names = List.sort_uniq compare Registry.names in
  Alcotest.(check int) "names unique" 13 (List.length names);
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Printf.sprintf "at least 2 in %s" c)
        true
        (List.length (Registry.by_category c) >= 2))
    [ "image"; "audio"; "video"; "computer vision"; "machine learning" ];
  Alcotest.(check string) "find works" "svm" (Registry.find "svm").name

let test_find_unknown () =
  Alcotest.(check bool) "unknown raises" true
    (try ignore (Registry.find "nope"); false with Invalid_argument _ -> true)

let test_programs_verify () =
  foreach_workload (fun w ->
    let prog = w.build () in
    (try Ir.Verifier.verify prog
     with Ir.Verifier.Invalid e ->
       Alcotest.failf "%s: %a" w.name Ir.Verifier.pp_error e);
    Alcotest.(check bool)
      (Printf.sprintf "%s has instructions" w.name)
      true
      (Ir.Prog.instr_count prog > 10))

let test_programs_have_state_vars () =
  foreach_workload (fun w ->
    let prog = w.build () in
    Alcotest.(check bool)
      (Printf.sprintf "%s has state variables" w.name)
      true
      (Transform.State_vars.count_prog prog > 0))

let test_golden_runs_both_roles () =
  foreach_workload (fun w ->
    List.iter
      (fun role ->
        let g = Workload.golden w ~role in
        Alcotest.(check bool)
          (Printf.sprintf "%s/%s output non-empty" w.name
             (Workload.role_name role))
          true
          (Array.length g.output > 0);
        Alcotest.(check bool)
          (Printf.sprintf "%s/%s finite output" w.name (Workload.role_name role))
          true
          (Array.for_all Float.is_finite g.output))
      [ Workload.Train; Workload.Test ])

let test_golden_deterministic () =
  foreach_workload (fun w ->
    let a = Workload.golden w ~role:Workload.Test in
    let b = Workload.golden w ~role:Workload.Test in
    Alcotest.(check bool)
      (Printf.sprintf "%s deterministic" w.name)
      true
      (Fidelity.Metric.identical ~reference:a.output b.output
       && a.steps = b.steps))

let test_train_and_test_differ () =
  foreach_workload (fun w ->
    let a = Workload.golden w ~role:Workload.Train in
    let b = Workload.golden w ~role:Workload.Test in
    Alcotest.(check bool)
      (Printf.sprintf "%s inputs differ" w.name)
      false
      (a.steps = b.steps
       && Array.length a.output = Array.length b.output
       && Fidelity.Metric.identical ~reference:a.output b.output))

(* Semantic preservation: every technique leaves the fault-free output
   bit-identical. *)
let check_preservation technique =
  foreach_workload (fun w ->
    let reference = Workload.golden w ~role:Workload.Test in
    let p = Softft.protect w technique in
    let transformed = Softft.golden p ~role:Workload.Test in
    Alcotest.(check bool)
      (Printf.sprintf "%s/%s output identical" w.name
         (Softft.technique_name technique))
      true
      (Fidelity.Metric.identical ~reference:reference.output transformed.output))

let test_dup_only_preserves_all () = check_preservation Softft.Dup_only
let test_dup_valchk_preserves_all () = check_preservation Softft.Dup_valchk
let test_full_dup_preserves_all () = check_preservation Softft.Full_dup

(* Codec round trips: the encoder's output, decoded by the matching host
   decoder, must be a faithful rendition of the input signal. *)

let test_jpeg_roundtrip () =
  let w, h = 48, 48 in
  let pixels = Synth.gray_image ~seed:5 ~w ~h in
  let stream = Jpeg_common.host_encode ~pixels ~w ~h in
  let decoded = Jpeg_common.host_decode ~stream ~w ~h in
  let reference = Array.map float_of_int pixels in
  let psnr = Fidelity.Metric.psnr ~reference decoded in
  Alcotest.(check bool) (Printf.sprintf "jpeg %0.1f dB" psnr) true (psnr > 30.0)

let test_adpcm_roundtrip () =
  let pcm = Synth.audio ~seed:6 ~n:1000 in
  let decoded = Adpcm_common.host_decode (Adpcm_common.host_encode pcm) in
  let reference = Array.map float_of_int pcm in
  let snr = Fidelity.Metric.segmental_snr ~reference decoded in
  Alcotest.(check bool) (Printf.sprintf "adpcm %0.1f dB" snr) true (snr > 15.0)

let test_mp3_roundtrip () =
  let pcm = Synth.audio ~seed:7 ~n:1024 in
  let decoded = Mp3_common.host_decode (Mp3_common.host_encode pcm) in
  let reference = Array.map float_of_int pcm in
  let psnr = Fidelity.Metric.psnr ~peak:32768.0 ~reference decoded in
  Alcotest.(check bool) (Printf.sprintf "mp3 %0.1f dB" psnr) true (psnr > 30.0)

let test_h264_roundtrip () =
  let w, h, frames = 24, 24, 3 in
  let video = Synth.video ~seed:8 ~w ~h ~frames in
  let stream = H264_common.host_encode ~video ~w ~h ~frames in
  let decoded = H264_common.host_decode ~stream ~w ~h ~frames in
  let reference = Array.map float_of_int video in
  let psnr = Fidelity.Metric.psnr ~reference decoded in
  Alcotest.(check bool) (Printf.sprintf "h264 %0.1f dB" psnr) true (psnr > 28.0)

(* Kernel-vs-host consistency: the IR decoders consume host-encoder
   streams; their fault-free output must decode the signal faithfully. *)

let test_jpegdec_kernel_quality () =
  let g = Workload.golden (Registry.find "jpegdec") ~role:Workload.Test in
  let pixels = Synth.gray_image ~seed:22 ~w:48 ~h:48 in
  let reference = Array.map float_of_int pixels in
  let psnr = Fidelity.Metric.psnr ~reference g.output in
  Alcotest.(check bool) (Printf.sprintf "decodes input %0.1f dB" psnr) true
    (psnr > 30.0)

let test_g721dec_kernel_matches_host () =
  let g = Workload.golden (Registry.find "g721dec") ~role:Workload.Test in
  let pcm = Synth.audio ~seed:52 ~n:1400 in
  let host = Adpcm_common.host_decode (Adpcm_common.host_encode pcm) in
  Alcotest.(check bool) "kernel = host decoder" true
    (Fidelity.Metric.identical ~reference:host g.output)

let test_h264dec_kernel_matches_host () =
  let g = Workload.golden (Registry.find "h264dec") ~role:Workload.Test in
  let video = Synth.video ~seed:92 ~w:24 ~h:24 ~frames:3 in
  let stream = H264_common.host_encode ~video ~w:24 ~h:24 ~frames:3 in
  let host = H264_common.host_decode ~stream ~w:24 ~h:24 ~frames:3 in
  Alcotest.(check bool) "kernel = host decoder" true
    (Fidelity.Metric.identical ~reference:host g.output)

(* Encoder kernels must be bit-identical to the host reference encoders:
   both implement the same arithmetic in the same order, so any divergence
   is a kernel (or interpreter) bug. *)

let kernel_output_words w ~arg_index ~words =
  let st = (Registry.find w).fresh_state Workload.Test in
  let prog = (Registry.find w).build () in
  let r =
    Interp.Machine.run prog ~entry:Workload.entry ~args:st.Faults.Campaign.args
      ~mem:st.Faults.Campaign.mem
  in
  let base = Ir.Value.to_int (List.nth st.Faults.Campaign.args arg_index) in
  let n =
    match words, r.stop with
    | Some n, _ -> n
    | None, Interp.Machine.Finished (Some len) -> Ir.Value.to_int len
    | None, _ -> Alcotest.fail (w ^ ": no length returned")
  in
  Interp.Memory.read_ints st.Faults.Campaign.mem base n

let test_jpegenc_kernel_bit_exact () =
  let kernel = kernel_output_words "jpegenc" ~arg_index:7 ~words:None in
  let pixels = Synth.gray_image ~seed:12 ~w:Jpegenc.test_w ~h:Jpegenc.test_h in
  let host = Jpeg_common.host_encode ~pixels ~w:Jpegenc.test_w ~h:Jpegenc.test_h in
  Alcotest.(check (array int)) "streams identical" host kernel

let test_g721enc_kernel_bit_exact () =
  let kernel =
    kernel_output_words "g721enc" ~arg_index:4 ~words:(Some G721enc.test_n)
  in
  let pcm = Synth.audio ~seed:42 ~n:G721enc.test_n in
  Alcotest.(check (array int)) "codes identical"
    (Adpcm_common.host_encode pcm) kernel

let test_mp3enc_kernel_bit_exact () =
  let n = Mp3enc.test_n in
  let frames = n / Mp3_common.bands in
  let kernel =
    kernel_output_words "mp3enc" ~arg_index:3
      ~words:(Some (frames * Mp3_common.frame_words))
  in
  let pcm = Synth.audio ~seed:62 ~n in
  Alcotest.(check (array int)) "frames identical"
    (Mp3_common.host_encode pcm) kernel

let test_h264enc_kernel_bit_exact () =
  let w, h, frames = H264enc.test_w, H264enc.test_h, H264enc.test_frames in
  let kernel =
    kernel_output_words "h264enc" ~arg_index:5
      ~words:(Some (H264_common.stream_words ~w ~h ~frames))
  in
  let video = Synth.video ~seed:82 ~w ~h ~frames in
  Alcotest.(check (array int)) "streams identical"
    (H264_common.host_encode ~video ~w ~h ~frames) kernel

(* Defensive host decoders must absorb garbage streams. *)
let test_host_decoders_defensive () =
  let rng = Rng.create 99 in
  let garbage n = Array.init n (fun _ -> Rng.int rng 2_000_000 - 1_000_000) in
  let (_ : float array) =
    Jpeg_common.host_decode ~stream:(garbage 64) ~w:48 ~h:48
  in
  let (_ : float array) = Adpcm_common.host_decode (garbage 100) in
  let (_ : float array) = Mp3_common.host_decode (garbage 200) in
  let (_ : float array) =
    H264_common.host_decode ~stream:(garbage 100) ~w:24 ~h:24 ~frames:3
  in
  ()

(* Synthetic input generators. *)

let test_synth_images_in_range () =
  let img = Synth.gray_image ~seed:1 ~w:32 ~h:32 in
  Alcotest.(check int) "size" 1024 (Array.length img);
  Array.iter
    (fun p -> Alcotest.(check bool) "0..255" true (p >= 0 && p <= 255))
    img;
  let rgb = Synth.rgb_image ~seed:1 ~w:8 ~h:8 in
  Alcotest.(check int) "rgb size" 192 (Array.length rgb)

let test_synth_audio_in_range () =
  let pcm = Synth.audio ~seed:2 ~n:512 in
  Array.iter
    (fun s ->
      Alcotest.(check bool) "pcm16" true (s >= -32768 && s <= 32767))
    pcm;
  (* Non-degenerate signal. *)
  let energy = Array.fold_left (fun a s -> a + abs s) 0 pcm in
  Alcotest.(check bool) "non-silent" true (energy > 1000)

let test_synth_deterministic () =
  Alcotest.(check bool) "same seed same image" true
    (Synth.gray_image ~seed:4 ~w:16 ~h:16 = Synth.gray_image ~seed:4 ~w:16 ~h:16);
  Alcotest.(check bool) "different seed different image" false
    (Synth.gray_image ~seed:4 ~w:16 ~h:16 = Synth.gray_image ~seed:5 ~w:16 ~h:16)

let test_synth_clusters () =
  let points, labels = Synth.clustered_points ~seed:3 ~n:40 ~d:3 ~k:4 in
  Alcotest.(check int) "points" 120 (Array.length points);
  Alcotest.(check int) "labels" 40 (Array.length labels);
  Array.iter
    (fun l -> Alcotest.(check bool) "label range" true (l >= 0 && l < 4))
    labels

let test_synth_svm_separable () =
  let sv, alpha, bias, test = Synth.svm_problem ~seed:4 ~n_sv:10 ~n_test:20 ~d:4 in
  Alcotest.(check int) "sv size" 40 (Array.length sv);
  Alcotest.(check int) "alpha size" 10 (Array.length alpha);
  Alcotest.(check int) "test size" 80 (Array.length test);
  Alcotest.(check bool) "bias finite" true (Float.is_finite bias)

let tests =
  [ Alcotest.test_case "registry: inventory" `Quick test_registry;
    Alcotest.test_case "registry: unknown name" `Quick test_find_unknown;
    Alcotest.test_case "all: programs verify" `Quick test_programs_verify;
    Alcotest.test_case "all: have state vars" `Quick test_programs_have_state_vars;
    Alcotest.test_case "all: golden runs" `Slow test_golden_runs_both_roles;
    Alcotest.test_case "all: deterministic" `Slow test_golden_deterministic;
    Alcotest.test_case "all: train/test differ" `Slow test_train_and_test_differ;
    Alcotest.test_case "all: dup only preserves" `Slow test_dup_only_preserves_all;
    Alcotest.test_case "all: dup+valchk preserves" `Slow
      test_dup_valchk_preserves_all;
    Alcotest.test_case "all: full dup preserves" `Slow test_full_dup_preserves_all;
    Alcotest.test_case "codec: jpeg roundtrip" `Quick test_jpeg_roundtrip;
    Alcotest.test_case "codec: adpcm roundtrip" `Quick test_adpcm_roundtrip;
    Alcotest.test_case "codec: mp3 roundtrip" `Quick test_mp3_roundtrip;
    Alcotest.test_case "codec: h264 roundtrip" `Quick test_h264_roundtrip;
    Alcotest.test_case "codec: jpegdec kernel quality" `Quick
      test_jpegdec_kernel_quality;
    Alcotest.test_case "codec: g721dec kernel = host" `Quick
      test_g721dec_kernel_matches_host;
    Alcotest.test_case "codec: h264dec kernel = host" `Quick
      test_h264dec_kernel_matches_host;
    Alcotest.test_case "codec: defensive decoders" `Quick
      test_host_decoders_defensive;
    Alcotest.test_case "codec: jpegenc kernel bit-exact" `Quick
      test_jpegenc_kernel_bit_exact;
    Alcotest.test_case "codec: g721enc kernel bit-exact" `Quick
      test_g721enc_kernel_bit_exact;
    Alcotest.test_case "codec: mp3enc kernel bit-exact" `Quick
      test_mp3enc_kernel_bit_exact;
    Alcotest.test_case "codec: h264enc kernel bit-exact" `Quick
      test_h264enc_kernel_bit_exact;
    Alcotest.test_case "synth: image ranges" `Quick test_synth_images_in_range;
    Alcotest.test_case "synth: audio ranges" `Quick test_synth_audio_in_range;
    Alcotest.test_case "synth: determinism" `Quick test_synth_deterministic;
    Alcotest.test_case "synth: clusters" `Quick test_synth_clusters;
    Alcotest.test_case "synth: svm problem" `Quick test_synth_svm_separable;
  ]
