(** Fine-grained behaviour tests of the codec building blocks shared by the
    host references and the IR kernels. *)

open Workloads

(* ----- JPEG pieces ----- *)

let test_zigzag_is_permutation () =
  let seen = Array.make 64 false in
  Array.iter
    (fun p ->
      Alcotest.(check bool) "in range" true (p >= 0 && p < 64);
      Alcotest.(check bool) "not repeated" false seen.(p);
      seen.(p) <- true)
    Jpeg_common.zigzag;
  Alcotest.(check int) "dc first" 0 Jpeg_common.zigzag.(0);
  Alcotest.(check int) "classic second entry" 1 Jpeg_common.zigzag.(1)

let test_dct_orthonormal () =
  (* Forward then inverse DCT must reconstruct the block (within epsilon). *)
  let rng = Rng.create 77 in
  let block = Array.init 64 (fun _ -> Rng.float_range rng (-128.0) 127.0) in
  let reconstructed = Jpeg_common.inverse_dct (Jpeg_common.forward_dct block) in
  Array.iteri
    (fun i v ->
      Alcotest.(check bool)
        (Printf.sprintf "cell %d" i)
        true
        (Float.abs (v -. block.(i)) < 1e-9))
    reconstructed

let test_dct_dc_coefficient () =
  (* A constant block concentrates all energy in DC: F(0,0) = 8 * value. *)
  let block = Array.make 64 10.0 in
  let freq = Jpeg_common.forward_dct block in
  Alcotest.(check bool) "dc = 80" true (Float.abs (freq.(0) -. 80.0) < 1e-9);
  for k = 1 to 63 do
    Alcotest.(check bool) "ac ~ 0" true (Float.abs freq.(k) < 1e-9)
  done

let test_round_half_away () =
  Alcotest.(check int) "2.5 -> 3" 3 (Jpeg_common.round_half_away 2.5);
  Alcotest.(check int) "-2.5 -> -3" (-3) (Jpeg_common.round_half_away (-2.5));
  Alcotest.(check int) "2.4 -> 2" 2 (Jpeg_common.round_half_away 2.4);
  Alcotest.(check int) "-0.4 -> 0" 0 (Jpeg_common.round_half_away (-0.4))

let test_jpeg_stream_length_bound () =
  let pixels = Synth.gray_image ~seed:3 ~w:32 ~h:32 in
  let stream = Jpeg_common.host_encode ~pixels ~w:32 ~h:32 in
  Alcotest.(check bool) "within worst case" true
    (Array.length stream <= 16 * Jpeg_common.max_block_words);
  Alcotest.(check bool) "compresses" true
    (Array.length stream < 32 * 32)

(* ----- ADPCM pieces ----- *)

let test_adpcm_step_table_monotone () =
  let t = Adpcm_common.step_table in
  Alcotest.(check int) "89 entries" 89 (Array.length t);
  for i = 1 to Array.length t - 1 do
    Alcotest.(check bool) "increasing" true (t.(i) > t.(i - 1))
  done;
  Alcotest.(check int) "last is pcm16 max" 32767 t.(Array.length t - 1)

let test_adpcm_predictor_clamps () =
  (* Feeding maximal samples must keep the predictor inside PCM16. *)
  let valpred = ref 0 and index = ref 0 in
  for _ = 1 to 200 do
    let _, v, i = Adpcm_common.encode_step ~valpred:!valpred ~index:!index 32767 in
    valpred := v;
    index := i;
    Alcotest.(check bool) "valpred clamped" true (v >= -32768 && v <= 32767);
    Alcotest.(check bool) "index clamped" true (i >= 0 && i <= 88)
  done

let test_adpcm_encode_decode_agree () =
  (* The encoder's internal reconstruction equals the decoder's output for
     the same code stream — the property that keeps them in sync. *)
  let pcm = Synth.audio ~seed:9 ~n:500 in
  let enc_valpred = ref 0 and enc_index = ref 0 in
  let dec_valpred = ref 0 and dec_index = ref 0 in
  Array.iter
    (fun s ->
      let code, ev, ei =
        Adpcm_common.encode_step ~valpred:!enc_valpred ~index:!enc_index s
      in
      let _, dv, di =
        Adpcm_common.decode_step ~valpred:!dec_valpred ~index:!dec_index code
      in
      enc_valpred := ev; enc_index := ei;
      dec_valpred := dv; dec_index := di;
      Alcotest.(check int) "predictors in lock step" ev dv;
      Alcotest.(check int) "indices in lock step" ei di)
    pcm

let test_adpcm_decode_masks_codes () =
  (* Codes outside 4 bits (fault-corrupted streams) are masked, not fatal. *)
  let _, v, i = Adpcm_common.decode_step ~valpred:0 ~index:0 0xFFFF in
  Alcotest.(check bool) "valpred sane" true (v >= -32768 && v <= 32767);
  Alcotest.(check bool) "index sane" true (i >= 0 && i <= 88)

(* ----- MP3 pieces ----- *)

let test_mp3_basis_orthonormal () =
  let n = Mp3_common.bands in
  let c = Mp3_common.ctab in
  for k1 = 0 to n - 1 do
    for k2 = k1 to min (n - 1) (k1 + 3) do
      let dot = ref 0.0 in
      for i = 0 to n - 1 do
        dot := !dot +. (c.((k1 * n) + i) *. c.((k2 * n) + i))
      done;
      let expected = if k1 = k2 then 1.0 else 0.0 in
      Alcotest.(check bool)
        (Printf.sprintf "<row%d,row%d>" k1 k2)
        true
        (Float.abs (!dot -. expected) < 1e-9)
    done
  done

let test_mp3_scalefactor_floor () =
  (* Silence still encodes with scalefactor >= 1 (no division by zero). *)
  let stream = Mp3_common.host_encode (Array.make 64 0) in
  Alcotest.(check bool) "sf >= 1" true (stream.(0) >= 1);
  let decoded = Mp3_common.host_decode stream in
  Array.iter
    (fun v -> Alcotest.(check (float 1e-9)) "silence decodes to silence" 0.0 v)
    decoded

let test_mp3_quantizer_saturates () =
  let pcm = Array.make 64 32767 in
  let stream = Mp3_common.host_encode pcm in
  for k = 1 to Mp3_common.bands do
    let q = stream.(k) in
    Alcotest.(check bool) "|q| <= qmax" true (abs q <= Mp3_common.qmax)
  done

(* ----- H.264 pieces ----- *)

let test_h264_stream_geometry () =
  Alcotest.(check int) "block words" 66 H264_common.block_words;
  Alcotest.(check int) "3-frame 24x24 stream" (576 + (2 * 9 * 66))
    (H264_common.stream_words ~w:24 ~h:24 ~frames:3)

let test_h264_static_scene_codes_small_residuals () =
  (* A static scene: motion search always finds a pixel-identical block
     (flat regions can tie at nonzero motion vectors), so every residual is
     zero and the decode is exact. *)
  let frame = Synth.gray_image ~seed:4 ~w:24 ~h:24 in
  let video = Array.concat [ frame; frame; frame ] in
  let stream = H264_common.host_encode ~video ~w:24 ~h:24 ~frames:3 in
  for blk = 0 to (2 * 9) - 1 do
    for k = 2 to 65 do
      Alcotest.(check int) "residual zero" 0 stream.(576 + (blk * 66) + k)
    done
  done;
  let decoded = H264_common.host_decode ~stream ~w:24 ~h:24 ~frames:3 in
  Alcotest.(check bool) "decode exact" true
    (Fidelity.Metric.identical
       ~reference:(Array.map float_of_int video)
       decoded)

let test_h264_motion_found_for_translation () =
  (* A purely translated frame should be predicted nearly perfectly within
     the search radius: the decoded video matches the source closely. *)
  let video = Synth.video ~seed:5 ~w:24 ~h:24 ~frames:3 in
  let stream = H264_common.host_encode ~video ~w:24 ~h:24 ~frames:3 in
  let decoded = H264_common.host_decode ~stream ~w:24 ~h:24 ~frames:3 in
  let reference = Array.map float_of_int video in
  let psnr = Fidelity.Metric.psnr ~reference decoded in
  Alcotest.(check bool) (Printf.sprintf "%.1f dB" psnr) true (psnr > 30.0)

let tests =
  [ Alcotest.test_case "jpeg: zigzag permutation" `Quick test_zigzag_is_permutation;
    Alcotest.test_case "jpeg: dct orthonormal" `Quick test_dct_orthonormal;
    Alcotest.test_case "jpeg: dc concentration" `Quick test_dct_dc_coefficient;
    Alcotest.test_case "jpeg: rounding" `Quick test_round_half_away;
    Alcotest.test_case "jpeg: stream bound" `Quick test_jpeg_stream_length_bound;
    Alcotest.test_case "adpcm: step table" `Quick test_adpcm_step_table_monotone;
    Alcotest.test_case "adpcm: predictor clamps" `Quick test_adpcm_predictor_clamps;
    Alcotest.test_case "adpcm: enc/dec lock step" `Quick
      test_adpcm_encode_decode_agree;
    Alcotest.test_case "adpcm: wild codes masked" `Quick
      test_adpcm_decode_masks_codes;
    Alcotest.test_case "mp3: basis orthonormal" `Quick test_mp3_basis_orthonormal;
    Alcotest.test_case "mp3: scalefactor floor" `Quick test_mp3_scalefactor_floor;
    Alcotest.test_case "mp3: quantizer saturates" `Quick test_mp3_quantizer_saturates;
    Alcotest.test_case "h264: stream geometry" `Quick test_h264_stream_geometry;
    Alcotest.test_case "h264: static scene" `Quick
      test_h264_static_scene_codes_small_residuals;
    Alcotest.test_case "h264: translation predicted" `Quick
      test_h264_motion_found_for_translation;
  ]
