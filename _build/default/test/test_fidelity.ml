(** Tests for the fidelity metrics (paper Table I, column 4). *)

open Fidelity

let approx = Alcotest.float 1e-6

let test_psnr_identical_infinite () =
  let a = [| 1.0; 2.0; 3.0 |] in
  Alcotest.(check bool) "infinite" true (Metric.psnr ~reference:a a = infinity)

let test_psnr_known_value () =
  (* Uniform error of 1 on peak 255: PSNR = 20*log10(255) ~ 48.13 dB. *)
  let reference = Array.make 100 10.0 in
  let signal = Array.make 100 11.0 in
  Alcotest.check approx "uniform error" (20.0 *. log10 255.0)
    (Metric.psnr ~reference signal)

let test_psnr_monotone_in_error () =
  let reference = Array.init 50 float_of_int in
  let small = Array.map (fun v -> v +. 0.5) reference in
  let large = Array.map (fun v -> v +. 5.0) reference in
  Alcotest.(check bool) "smaller error, higher psnr" true
    (Metric.psnr ~reference small > Metric.psnr ~reference large)

let test_psnr_peak_scaling () =
  let reference = Array.make 10 0.0 in
  let signal = Array.make 10 100.0 in
  Alcotest.(check bool) "higher peak, higher psnr" true
    (Metric.psnr ~peak:32768.0 ~reference signal
     > Metric.psnr ~peak:255.0 ~reference signal)

let test_segmental_snr_identical () =
  let a = Array.init 256 (fun i -> sin (float_of_int i /. 10.0) *. 100.0) in
  Alcotest.check approx "clamped max" 100.0 (Metric.segmental_snr ~reference:a a)

let test_segmental_snr_localized_corruption () =
  (* One bad segment out of many leaves the mean above the 80 dB bar. *)
  let n = 1024 in
  let reference = Array.init n (fun i -> sin (float_of_int i /. 7.0) *. 1000.0) in
  let corrupted = Array.copy reference in
  for i = 0 to 63 do
    corrupted.(i) <- 0.0
  done;
  let snr = Metric.segmental_snr ~reference corrupted in
  Alcotest.(check bool) "localized stays acceptable" true (snr >= 80.0);
  Alcotest.(check bool) "but not perfect" true (snr < 100.0)

let test_segmental_snr_global_corruption () =
  let n = 1024 in
  let reference = Array.init n (fun i -> sin (float_of_int i /. 7.0) *. 1000.0) in
  let corrupted = Array.map (fun v -> -.v) reference in
  Alcotest.(check bool) "global corruption fails" true
    (Metric.segmental_snr ~reference corrupted < 80.0)

let test_mismatch_fraction () =
  let reference = [| 0.0; 1.0; 2.0; 3.0 |] in
  Alcotest.check approx "none" 0.0
    (Metric.mismatch_fraction ~reference [| 0.0; 1.0; 2.0; 3.0 |]);
  Alcotest.check approx "half" 0.5
    (Metric.mismatch_fraction ~reference [| 0.0; 9.0; 2.0; 9.0 |]);
  Alcotest.check approx "all" 1.0
    (Metric.mismatch_fraction ~reference [| 9.0; 9.0; 9.0; 9.0 |])

let test_spec_acceptance () =
  let psnr30 = Metric.psnr_spec 30.0 in
  let reference = Array.make 100 128.0 in
  let tiny = Array.map (fun v -> v +. 1.0) reference in
  let huge = Array.map (fun v -> v +. 200.0) reference in
  Alcotest.(check bool) "tiny error acceptable" true
    (Metric.acceptable psnr30 ~reference tiny);
  Alcotest.(check bool) "huge error unacceptable" false
    (Metric.acceptable psnr30 ~reference huge);
  let mis = Metric.mismatch_spec 0.10 in
  let labels = Array.init 100 (fun i -> float_of_int (i mod 4)) in
  let five_wrong = Array.copy labels in
  for i = 0 to 4 do five_wrong.(i) <- 99.0 done;
  let fifty_wrong = Array.copy labels in
  for i = 0 to 49 do fifty_wrong.(i) <- 99.0 done;
  Alcotest.(check bool) "5% mismatch acceptable" true
    (Metric.acceptable mis ~reference:labels five_wrong);
  Alcotest.(check bool) "50% mismatch unacceptable" false
    (Metric.acceptable mis ~reference:labels fifty_wrong)

let test_identical_nan_safe () =
  let reference = [| Float.nan; 1.0 |] in
  Alcotest.(check bool) "nan equals itself bitwise" true
    (Metric.identical ~reference [| Float.nan; 1.0 |]);
  Alcotest.(check bool) "different lengths" false
    (Metric.identical ~reference [| Float.nan |])

let test_length_mismatch_rejected () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Metric.psnr ~reference:[| 1.0 |] [| 1.0; 2.0 |]);
       false
     with Invalid_argument _ -> true)

let test_spec_to_string () =
  Alcotest.(check string) "psnr" "PSNR (30 dB)"
    (Metric.spec_to_string (Metric.psnr_spec 30.0));
  Alcotest.(check string) "mismatch" "Matrix mismatch (10%)"
    (Metric.spec_to_string (Metric.mismatch_spec 0.10))

let tests =
  [ Alcotest.test_case "psnr: identical" `Quick test_psnr_identical_infinite;
    Alcotest.test_case "psnr: known value" `Quick test_psnr_known_value;
    Alcotest.test_case "psnr: monotone" `Quick test_psnr_monotone_in_error;
    Alcotest.test_case "psnr: peak scaling" `Quick test_psnr_peak_scaling;
    Alcotest.test_case "segsnr: identical" `Quick test_segmental_snr_identical;
    Alcotest.test_case "segsnr: localized ok" `Quick
      test_segmental_snr_localized_corruption;
    Alcotest.test_case "segsnr: global fails" `Quick
      test_segmental_snr_global_corruption;
    Alcotest.test_case "mismatch: fractions" `Quick test_mismatch_fraction;
    Alcotest.test_case "spec: acceptance" `Quick test_spec_acceptance;
    Alcotest.test_case "identical: nan safe" `Quick test_identical_nan_safe;
    Alcotest.test_case "lengths checked" `Quick test_length_mismatch_rejected;
    Alcotest.test_case "spec: to_string" `Quick test_spec_to_string;
  ]
