(** Tests for the deterministic PRNG. *)

let test_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits a) (Rng.bits b)
  done

let test_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different streams" false (Rng.bits a = Rng.bits b)

let test_int_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "in [0,17)" true (v >= 0 && v < 17)
  done

let test_int_covers_range () =
  let rng = Rng.create 8 in
  let seen = Array.make 8 false in
  for _ = 1 to 500 do
    seen.(Rng.int rng 8) <- true
  done;
  Alcotest.(check bool) "all buckets hit" true (Array.for_all Fun.id seen)

let test_float_bounds () =
  let rng = Rng.create 9 in
  for _ = 1 to 1000 do
    let v = Rng.float rng in
    Alcotest.(check bool) "in [0,1)" true (v >= 0.0 && v < 1.0)
  done

let test_split_independence () =
  let parent = Rng.create 10 in
  let child = Rng.split parent in
  let c1 = Rng.bits child in
  let p1 = Rng.bits parent in
  Alcotest.(check bool) "streams diverge" false (c1 = p1)

let test_gaussian_moments () =
  let rng = Rng.create 11 in
  let n = 20_000 in
  let sum = ref 0.0 and sq = ref 0.0 in
  for _ = 1 to n do
    let g = Rng.gaussian rng in
    sum := !sum +. g;
    sq := !sq +. (g *. g)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sq /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check bool) "mean ~ 0" true (Float.abs mean < 0.05);
  Alcotest.(check bool) "var ~ 1" true (Float.abs (var -. 1.0) < 0.1)

let test_shuffle_permutes () =
  let rng = Rng.create 12 in
  let arr = Array.init 50 Fun.id in
  let shuffled = Array.copy arr in
  Rng.shuffle rng shuffled;
  Alcotest.(check bool) "same multiset" true
    (List.sort compare (Array.to_list shuffled) = Array.to_list arr);
  Alcotest.(check bool) "order changed" false (shuffled = arr)

let tests =
  [ Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int coverage" `Quick test_int_covers_range;
    Alcotest.test_case "float bounds" `Quick test_float_bounds;
    Alcotest.test_case "split independence" `Quick test_split_independence;
    Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
    Alcotest.test_case "shuffle permutes" `Quick test_shuffle_permutes;
  ]
