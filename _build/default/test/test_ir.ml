(** Unit tests for the IR: values, opcodes, builder, printer, verifier. *)

open Ir

let check = Alcotest.check
let int64 = Alcotest.int64

(* ----- Value ----- *)

let test_bits_roundtrip () =
  check int64 "int bits" 42L (Value.bits (Value.Int 42L));
  let f = 3.25 in
  check int64 "float bits" (Int64.bits_of_float f) (Value.bits (Value.Float f))

let test_flip_bit_int () =
  let v = Value.Int 0L in
  check int64 "flip bit 0" 1L (Value.to_int64 (Value.flip_bit v 0));
  check int64 "flip bit 5" 32L (Value.to_int64 (Value.flip_bit v 5));
  check int64 "flip bit 63" Int64.min_int (Value.to_int64 (Value.flip_bit v 63))

let test_flip_bit_involution () =
  let v = Value.Int 123456789L in
  for b = 0 to 63 do
    let twice = Value.flip_bit (Value.flip_bit v b) b in
    check int64 (Printf.sprintf "bit %d" b) 123456789L (Value.to_int64 twice)
  done

let test_flip_preserves_kind () =
  Alcotest.(check bool) "float stays float" true
    (Value.is_float (Value.flip_bit (Value.Float 1.5) 13));
  Alcotest.(check bool) "int stays int" true
    (Value.is_int (Value.flip_bit (Value.Int 7L) 13))

let test_value_equal () =
  Alcotest.(check bool) "nan = nan (bitwise)" true
    (Value.equal (Value.Float Float.nan) (Value.Float Float.nan));
  Alcotest.(check bool) "kind mismatch" false
    (Value.equal (Value.Int 0L) (Value.Float 0.0))

let test_disturbance () =
  Alcotest.(check (float 1e-9)) "int disturbance" 65536.0
    (Value.disturbance ~before:(Value.Int 0L) ~after:(Value.Int 65536L));
  Alcotest.(check bool) "kind change is infinite" true
    (Value.disturbance ~before:(Value.Int 0L) ~after:(Value.Float 0.0)
     = Float.infinity)

(* ----- Opcode evaluation ----- *)

let test_binops () =
  let i n = Value.Int (Int64.of_int n) in
  check int64 "add" 7L (Value.to_int64 (Opcode.eval_binop Opcode.Add (i 3) (i 4)));
  check int64 "sub" (-1L) (Value.to_int64 (Opcode.eval_binop Opcode.Sub (i 3) (i 4)));
  check int64 "mul" 12L (Value.to_int64 (Opcode.eval_binop Opcode.Mul (i 3) (i 4)));
  check int64 "sdiv" 2L (Value.to_int64 (Opcode.eval_binop Opcode.Sdiv (i 9) (i 4)));
  check int64 "srem" 1L (Value.to_int64 (Opcode.eval_binop Opcode.Srem (i 9) (i 4)));
  check int64 "shl" 40L (Value.to_int64 (Opcode.eval_binop Opcode.Shl (i 5) (i 3)));
  check int64 "ashr neg" (-2L)
    (Value.to_int64 (Opcode.eval_binop Opcode.Ashr (i (-8)) (i 2)));
  Alcotest.(check (float 1e-9)) "fadd" 5.5
    (Value.to_float (Opcode.eval_binop Opcode.Fadd (Value.Float 2.0) (Value.Float 3.5)))

let test_div_by_zero () =
  Alcotest.check_raises "sdiv 0" Opcode.Division_by_zero (fun () ->
    ignore (Opcode.eval_binop Opcode.Sdiv (Value.Int 1L) (Value.Int 0L)));
  Alcotest.check_raises "srem 0" Opcode.Division_by_zero (fun () ->
    ignore (Opcode.eval_binop Opcode.Srem (Value.Int 1L) (Value.Int 0L)))

let test_icmp () =
  let i n = Value.Int (Int64.of_int n) in
  let t op a b = Value.truthy (Opcode.eval_icmp op a b) in
  Alcotest.(check bool) "slt" true (t Opcode.Islt (i 1) (i 2));
  Alcotest.(check bool) "sge" true (t Opcode.Isge (i 2) (i 2));
  Alcotest.(check bool) "eq" false (t Opcode.Ieq (i 1) (i 2))

let test_kind_error () =
  Alcotest.(check bool) "int op on float raises" true
    (try
       ignore (Opcode.eval_binop Opcode.Add (Value.Float 1.0) (Value.Int 1L));
       false
     with Value.Kind_error _ -> true)

(* ----- Builder + a small interpreted program ----- *)

(* sum of 0..n-1 via a loop: exercises phis, icmp, br. *)
let build_sum_prog () =
  let prog = Prog.create () in
  let b = Builder.create prog ~name:"main" ~n_params:1 in
  let n = Builder.param b 0 in
  let sum =
    Builder.for_up b ~from:(Builder.imm 0) ~until:n
      ~carried:[ Builder.imm 0 ]
      ~body:(fun ~i regs ->
        match regs with
        | [ acc ] -> [ Builder.add b (Reg acc) i ]
        | _ -> assert false)
      ()
  in
  (match sum with
   | [ s ] -> Builder.ret b (Reg s)
   | _ -> assert false);
  Builder.finish b;
  prog

let run_main ?config prog args =
  let mem = Interp.Memory.create () in
  Interp.Machine.run ?config prog ~entry:"main" ~args ~mem

let test_builder_sum () =
  let prog = build_sum_prog () in
  Verifier.verify prog;
  let result = run_main prog [ Value.of_int 10 ] in
  match result.stop with
  | Interp.Machine.Finished (Some v) ->
    check int64 "sum 0..9" 45L (Value.to_int64 v)
  | _ -> Alcotest.failf "unexpected stop: %a" Interp.Machine.pp_stop result.stop

let test_builder_if () =
  let prog = Prog.create () in
  let b = Builder.create prog ~name:"main" ~n_params:1 in
  let x = Builder.param b 0 in
  let cond = Builder.gt b x (Builder.imm 5) in
  let vals =
    Builder.if_ b cond
      ~then_:(fun () -> [ Builder.mul b x (Builder.imm 2) ])
      ~else_:(fun () -> [ Builder.add b x (Builder.imm 100) ])
  in
  (match vals with
   | [ v ] -> Builder.ret b (Reg v)
   | _ -> assert false);
  Builder.finish b;
  Verifier.verify prog;
  let r1 = run_main prog [ Value.of_int 10 ] in
  let r2 = run_main prog [ Value.of_int 3 ] in
  (match r1.stop, r2.stop with
   | Interp.Machine.Finished (Some a), Interp.Machine.Finished (Some b) ->
     check int64 "then branch" 20L (Value.to_int64 a);
     check int64 "else branch" 103L (Value.to_int64 b)
   | _ -> Alcotest.fail "runs did not finish")

let test_nested_loops () =
  (* sum_{i<4} sum_{j<3} (i*j) = (0+1+2+3)*(0+1+2) = 18 *)
  let prog = Prog.create () in
  let b = Builder.create prog ~name:"main" ~n_params:0 in
  let total =
    Builder.for_up b ~from:(Builder.imm 0) ~until:(Builder.imm 4)
      ~carried:[ Builder.imm 0 ]
      ~body:(fun ~i regs ->
        match regs with
        | [ acc ] ->
          let inner =
            Builder.for_up b ~from:(Builder.imm 0) ~until:(Builder.imm 3)
              ~carried:[ Instr.Reg acc ]
              ~body:(fun ~i:j inner_regs ->
                match inner_regs with
                | [ acc2 ] ->
                  let prod = Builder.mul b i j in
                  [ Builder.add b (Reg acc2) prod ]
                | _ -> assert false)
              ()
          in
          (match inner with [ x ] -> [ Instr.Reg x ] | _ -> assert false)
        | _ -> assert false)
      ()
  in
  (match total with
   | [ s ] -> Builder.ret b (Reg s)
   | _ -> assert false);
  Builder.finish b;
  Verifier.verify prog;
  match (run_main prog []).stop with
  | Interp.Machine.Finished (Some v) -> check int64 "nested" 18L (Value.to_int64 v)
  | stop -> Alcotest.failf "unexpected stop: %a" Interp.Machine.pp_stop stop

let test_calls () =
  let prog = Prog.create () in
  let sq = Builder.create prog ~name:"square" ~n_params:1 in
  let x = Builder.param sq 0 in
  Builder.ret sq (Builder.mul sq x x);
  Builder.finish sq;
  let b = Builder.create prog ~name:"main" ~n_params:1 in
  let v = Builder.call b "square" [ Builder.param b 0 ] in
  let v2 = Builder.add b v (Builder.imm 1) in
  Builder.ret b v2;
  Builder.finish b;
  Verifier.verify prog;
  match (run_main prog [ Value.of_int 6 ]).stop with
  | Interp.Machine.Finished (Some v) -> check int64 "6^2+1" 37L (Value.to_int64 v)
  | stop -> Alcotest.failf "unexpected stop: %a" Interp.Machine.pp_stop stop

let test_memory_ops () =
  let prog = Prog.create () in
  let b = Builder.create prog ~name:"main" ~n_params:0 in
  let base = Builder.alloc b (Builder.imm 8) in
  Builder.for_each b ~from:(Builder.imm 0) ~until:(Builder.imm 8)
    ~body:(fun ~i -> Builder.seti b base i (Builder.mul b i i));
  let sums =
    Builder.for_up b ~from:(Builder.imm 0) ~until:(Builder.imm 8)
      ~carried:[ Builder.imm 0 ]
      ~body:(fun ~i regs ->
        match regs with
        | [ acc ] -> [ Builder.add b (Reg acc) (Builder.geti b base i) ]
        | _ -> assert false)
      ()
  in
  (match sums with [ s ] -> Builder.ret b (Reg s) | _ -> assert false);
  Builder.finish b;
  Verifier.verify prog;
  match (run_main prog []).stop with
  | Interp.Machine.Finished (Some v) ->
    (* sum of squares 0..7 = 140 *)
    check int64 "sum squares" 140L (Value.to_int64 v)
  | stop -> Alcotest.failf "unexpected stop: %a" Interp.Machine.pp_stop stop

(* ----- Verifier ----- *)

let test_verifier_rejects_bad_branch () =
  let prog = Prog.create () in
  let b = Builder.create prog ~name:"main" ~n_params:0 in
  Builder.jmp b "nowhere";
  Builder.finish b;
  Alcotest.(check bool) "invalid" false (Verifier.is_valid prog)

let test_verifier_rejects_double_def () =
  let prog = Prog.create () in
  let b = Builder.create prog ~name:"main" ~n_params:0 in
  let v = Builder.add b (Builder.imm 1) (Builder.imm 2) in
  Builder.ret b v;
  Builder.finish b;
  (* Forge a second definition of the same register. *)
  let f = Prog.find_func prog "main" in
  let entry = Func.entry_block f in
  let bad =
    { Instr.uid = Prog.fresh_uid prog;
      dest = (match v with Instr.Reg r -> Some r | Instr.Imm _ -> None);
      kind = Instr.Const Value.zero; origin = Instr.From_source }
  in
  Block.append entry [ bad ];
  Alcotest.(check bool) "invalid" false (Verifier.is_valid prog)

let test_verifier_accepts_sum () =
  Alcotest.(check bool) "valid" true (Verifier.is_valid (build_sum_prog ()))

let contains_substring ~affix s =
  let n = String.length affix and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = affix || at (i + 1)) in
  at 0

let test_printer_output () =
  let prog = build_sum_prog () in
  let s = Printer.prog_to_string prog in
  Alcotest.(check bool) "mentions func" true (contains_substring ~affix:"func @main" s);
  Alcotest.(check bool) "mentions phi" true (contains_substring ~affix:"phi" s)

let tests =
  [ Alcotest.test_case "value: bits roundtrip" `Quick test_bits_roundtrip;
    Alcotest.test_case "value: flip bit" `Quick test_flip_bit_int;
    Alcotest.test_case "value: flip involution" `Quick test_flip_bit_involution;
    Alcotest.test_case "value: flip preserves kind" `Quick test_flip_preserves_kind;
    Alcotest.test_case "value: equality" `Quick test_value_equal;
    Alcotest.test_case "value: disturbance" `Quick test_disturbance;
    Alcotest.test_case "opcode: binops" `Quick test_binops;
    Alcotest.test_case "opcode: division by zero" `Quick test_div_by_zero;
    Alcotest.test_case "opcode: icmp" `Quick test_icmp;
    Alcotest.test_case "opcode: kind error" `Quick test_kind_error;
    Alcotest.test_case "builder: loop sum" `Quick test_builder_sum;
    Alcotest.test_case "builder: if/else" `Quick test_builder_if;
    Alcotest.test_case "builder: nested loops" `Quick test_nested_loops;
    Alcotest.test_case "builder: calls" `Quick test_calls;
    Alcotest.test_case "builder: memory" `Quick test_memory_ops;
    Alcotest.test_case "verifier: bad branch" `Quick test_verifier_rejects_bad_branch;
    Alcotest.test_case "verifier: double def" `Quick test_verifier_rejects_double_def;
    Alcotest.test_case "verifier: accepts sum" `Quick test_verifier_accepts_sum;
    Alcotest.test_case "printer: textual form" `Quick test_printer_output;
  ]
