(** Integration tests of the public [Softft] API on real workloads. *)

let jpegdec () = Workloads.Registry.find "jpegdec"
let g721enc () = Workloads.Registry.find "g721enc"

let test_protect_original_is_identity () =
  let p = Softft.protect (jpegdec ()) Softft.Original in
  Alcotest.(check int) "nothing duplicated" 0 p.static_stats.duplicated_instrs;
  Alcotest.(check int) "no checks" 0 p.static_stats.value_checks

let test_protect_dup_only () =
  let p = Softft.protect (g721enc ()) Softft.Dup_only in
  Alcotest.(check bool) "state vars found" true (p.static_stats.state_vars > 0);
  Alcotest.(check bool) "duplicates added" true
    (p.static_stats.duplicated_instrs > 0);
  Alcotest.(check bool) "dup checks added" true (p.static_stats.dup_checks > 0);
  Alcotest.(check int) "no value checks" 0 p.static_stats.value_checks

let test_protect_dup_valchk () =
  let p = Softft.protect (jpegdec ()) Softft.Dup_valchk in
  Alcotest.(check bool) "value checks added" true
    (p.static_stats.value_checks > 0)

let test_protect_full_dup_is_bigger () =
  let d = Softft.protect (jpegdec ()) Softft.Dup_only in
  let f = Softft.protect (jpegdec ()) Softft.Full_dup in
  Alcotest.(check bool) "full dup clones more" true
    (f.static_stats.duplicated_instrs > d.static_stats.duplicated_instrs)

let test_overhead_ordering () =
  let w = jpegdec () in
  let role = Workloads.Workload.Test in
  let baseline = Softft.golden (Softft.protect w Softft.Original) ~role in
  let ovh t = Softft.overhead ~baseline (Softft.protect w t) ~role in
  let dup = ovh Softft.Dup_only in
  let dv = ovh Softft.Dup_valchk in
  let full = ovh Softft.Full_dup in
  Alcotest.(check bool) (Printf.sprintf "dup>0 (%.3f)" dup) true (dup > 0.0);
  Alcotest.(check bool) (Printf.sprintf "dv>dup (%.3f)" dv) true (dv > dup);
  Alcotest.(check bool) (Printf.sprintf "full largest (%.3f)" full) true
    (full > dv)

let test_campaign_runs () =
  let p = Softft.protect (g721enc ()) Softft.Dup_only in
  let summary, trials =
    Softft.campaign p ~role:Workloads.Workload.Test ~trials:30 ~seed:4
  in
  Alcotest.(check int) "30 trials" 30 summary.trials;
  Alcotest.(check int) "trial records" 30 (List.length trials)

let test_margin_of_error () =
  let m = Softft.margin_of_error ~trials:1000 ~proportion:0.5 in
  Alcotest.(check bool) "~3.1% at n=1000, p=.5" true
    (Float.abs (m -. 0.031) < 0.001);
  Alcotest.(check bool) "shrinks with n" true
    (Softft.margin_of_error ~trials:4000 ~proportion:0.5 < m)

let test_static_stat_fractions () =
  let p = Softft.protect (jpegdec ()) Softft.Dup_valchk in
  let s = p.static_stats in
  let dup_frac = Transform.Pipeline.duplicated_fraction s in
  let chk_frac = Transform.Pipeline.value_check_fraction s in
  Alcotest.(check bool) "dup fraction sane" true (dup_frac > 0.0 && dup_frac < 1.0);
  Alcotest.(check bool) "chk fraction sane" true (chk_frac > 0.0 && chk_frac < 1.0)

let test_experiments_table_rows () =
  Alcotest.(check int) "table 1 covers all benchmarks" 13
    (List.length (Softft.Experiments.table1_rows ()))

let test_experiments_evaluate_structure () =
  let results =
    Softft.Experiments.evaluate ~trials:10
      ~techniques:[ Softft.Original; Softft.Dup_only ]
      [ g721enc () ]
  in
  match results with
  | [ r ] ->
    Alcotest.(check int) "two cells" 2 (List.length r.cells);
    let rows = Softft.Experiments.fig2_rows results in
    Alcotest.(check int) "fig2: one bench + average" 2 (List.length rows)
  | _ -> Alcotest.fail "expected one result"

let test_csv_export () =
  let results =
    Softft.Experiments.evaluate ~trials:10
      ~techniques:[ Softft.Original; Softft.Dup_only ]
      [ g721enc () ]
  in
  let csv = Softft.Experiments.to_csv results in
  let lines = String.split_on_char '\n' (String.trim csv) in
  (* header + one row per (benchmark, technique) *)
  Alcotest.(check int) "rows" 3 (List.length lines);
  Alcotest.(check bool) "header starts with benchmark" true
    (String.length (List.hd lines) > 9
     && String.sub (List.hd lines) 0 9 = "benchmark")

let test_detection_sources () =
  let rows =
    Softft.Experiments.detection_sources ~trials:60 [ g721enc () ]
  in
  Alcotest.(check int) "two rows" 2 (List.length rows);
  List.iter
    (fun (r : Softft.Experiments.sources_row) ->
      Alcotest.(check int) "split adds up" r.src_swdetect
        (r.src_dup_checks + r.src_value_checks))
    rows;
  (* Under Dup only, every detection is a duplication compare. *)
  let dup_only = List.hd rows in
  Alcotest.(check int) "dup-only has no value checks" 0
    dup_only.src_value_checks

let test_cfc_static_stats () =
  let p = Softft.protect (g721enc ()) Softft.Cfc_only in
  Alcotest.(check bool) "signature checks counted" true
    (p.static_stats.value_checks > 0);
  Alcotest.(check int) "no duplication" 0 p.static_stats.duplicated_instrs

let test_report_render () =
  let s =
    Softft.Report.render ~header:[ "a"; "b" ]
      ~rows:[ [ "x"; "1" ]; [ "longer"; "22" ] ]
  in
  Alcotest.(check bool) "contains separator" true (String.contains s '-');
  Alcotest.(check bool) "multi-line" true (String.contains s '\n')

let test_report_ragged_rejected () =
  Alcotest.(check bool) "ragged raises" true
    (try
       ignore (Softft.Report.render ~header:[ "a"; "b" ] ~rows:[ [ "x" ] ]);
       false
     with Invalid_argument _ -> true)

let tests =
  [ Alcotest.test_case "protect: original identity" `Quick
      test_protect_original_is_identity;
    Alcotest.test_case "protect: dup only" `Quick test_protect_dup_only;
    Alcotest.test_case "protect: dup+valchk" `Quick test_protect_dup_valchk;
    Alcotest.test_case "protect: full dup bigger" `Quick
      test_protect_full_dup_is_bigger;
    Alcotest.test_case "overhead: ordering (jpegdec)" `Slow test_overhead_ordering;
    Alcotest.test_case "campaign: runs" `Quick test_campaign_runs;
    Alcotest.test_case "margin of error" `Quick test_margin_of_error;
    Alcotest.test_case "static stats: fractions" `Quick test_static_stat_fractions;
    Alcotest.test_case "experiments: table 1" `Quick test_experiments_table_rows;
    Alcotest.test_case "experiments: evaluate" `Slow
      test_experiments_evaluate_structure;
    Alcotest.test_case "experiments: csv export" `Slow test_csv_export;
    Alcotest.test_case "experiments: detection sources" `Slow
      test_detection_sources;
    Alcotest.test_case "protect: cfc stats" `Quick test_cfc_static_stats;
    Alcotest.test_case "report: render" `Quick test_report_render;
    Alcotest.test_case "report: ragged" `Quick test_report_ragged_rejected;
  ]
