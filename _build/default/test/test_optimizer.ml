(** Tests for the cleanup passes (constant folding, DCE), the liveness
    analysis and the signature-based control-flow checking pass. *)

open Ir

let run_main ?config prog args =
  let mem = Interp.Memory.create () in
  Interp.Machine.run ?config prog ~entry:"main" ~args ~mem

let finished_value (r : Interp.Machine.result) =
  match r.stop with
  | Interp.Machine.Finished (Some v) -> v
  | stop -> Alcotest.failf "did not finish: %a" Interp.Machine.pp_stop stop

(* ----- constant folding ----- *)

let test_fold_constants () =
  let prog = Prog.create () in
  let b = Builder.create prog ~name:"main" ~n_params:0 in
  let x = Builder.add b (Builder.imm 2) (Builder.imm 3) in
  let y = Builder.mul b x (Builder.imm 4) in
  Builder.ret b y;
  Builder.finish b;
  let stats = Transform.Constant_fold.run prog in
  Verifier.verify prog;
  Alcotest.(check bool) "folded something" true (stats.folded >= 2);
  Alcotest.(check int64) "result preserved" 20L
    (Value.to_int64 (finished_value (run_main prog [])))

let test_fold_identities () =
  let prog = Prog.create () in
  let b = Builder.create prog ~name:"main" ~n_params:1 in
  let x = Builder.param b 0 in
  let a = Builder.add b x (Builder.imm 0) in
  let m = Builder.mul b a (Builder.imm 1) in
  let o = Builder.or_ b m (Builder.imm 0) in
  Builder.ret b o;
  Builder.finish b;
  let stats = Transform.Constant_fold.run prog in
  Verifier.verify prog;
  Alcotest.(check bool) "identities found" true (stats.identities >= 2);
  Alcotest.(check int64) "identity result" 9L
    (Value.to_int64 (finished_value (run_main prog [ Value.of_int 9 ])))

let test_fold_constant_branch () =
  let prog = Prog.create () in
  let b = Builder.create prog ~name:"main" ~n_params:0 in
  let cond = Builder.gt b (Builder.imm 5) (Builder.imm 3) in
  let vals =
    Builder.if_ b cond
      ~then_:(fun () -> [ Builder.imm 111 ])
      ~else_:(fun () -> [ Builder.imm 222 ])
  in
  (match vals with [ v ] -> Builder.ret b (Reg v) | _ -> assert false);
  Builder.finish b;
  let stats = Transform.Constant_fold.run prog in
  Verifier.verify prog;
  Alcotest.(check int) "branch resolved" 1 stats.branches_resolved;
  Alcotest.(check int64) "took then" 111L
    (Value.to_int64 (finished_value (run_main prog [])))

let test_fold_keeps_division_trap () =
  (* 1/0 must NOT fold: the trap is a runtime event. *)
  let prog = Prog.create () in
  let b = Builder.create prog ~name:"main" ~n_params:0 in
  Builder.ret b (Builder.sdiv b (Builder.imm 1) (Builder.imm 0));
  Builder.finish b;
  let (_ : Transform.Constant_fold.stats) = Transform.Constant_fold.run prog in
  match (run_main prog []).stop with
  | Interp.Machine.Trapped Interp.Machine.Division_by_zero -> ()
  | stop -> Alcotest.failf "expected trap, got %a" Interp.Machine.pp_stop stop

(* ----- dead-code elimination ----- *)

let test_dce_removes_dead () =
  let prog = Prog.create () in
  let b = Builder.create prog ~name:"main" ~n_params:1 in
  let x = Builder.param b 0 in
  (* Dead chain. *)
  let d1 = Builder.mul b x x in
  let (_ : Instr.operand) = Builder.add b d1 (Builder.imm 1) in
  (* Live result. *)
  Builder.ret b (Builder.add b x (Builder.imm 5));
  Builder.finish b;
  let before = Prog.instr_count prog in
  let stats = Transform.Dce.run prog in
  Verifier.verify prog;
  Alcotest.(check int) "removed the dead chain" 2 stats.removed_instrs;
  Alcotest.(check int) "count dropped" (before - 2) (Prog.instr_count prog);
  Alcotest.(check int64) "result preserved" 12L
    (Value.to_int64 (finished_value (run_main prog [ Value.of_int 7 ])))

let test_dce_keeps_side_effects () =
  let prog = Prog.create () in
  let b = Builder.create prog ~name:"main" ~n_params:0 in
  let base = Builder.alloc b (Builder.imm 1) in
  Builder.store b base (Builder.imm 9);   (* store result unused but live *)
  Builder.ret b (Builder.load b base);
  Builder.finish b;
  let stats = Transform.Dce.run prog in
  Alcotest.(check int) "nothing removed" 0 stats.removed_instrs;
  Alcotest.(check int64) "store survived" 9L
    (Value.to_int64 (finished_value (run_main prog [])))

let test_optimize_pipeline_on_workloads () =
  (* Fold + DCE must preserve every workload's fault-free output. *)
  List.iter
    (fun (w : Workloads.Workload.t) ->
      let reference = Workloads.Workload.golden w ~role:Workloads.Workload.Test in
      let prog = w.build () in
      let (_ : Transform.Constant_fold.stats), (_ : Transform.Cse.stats),
          (_ : Transform.Dce.stats) =
        Transform.Dce.optimize prog
      in
      let optimized =
        Workloads.Workload.golden w ~prog ~role:Workloads.Workload.Test
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s output preserved" w.name)
        true
        (Fidelity.Metric.identical ~reference:reference.output optimized.output))
    Workloads.Registry.all

(* ----- common-subexpression elimination ----- *)

let test_cse_merges_duplicates () =
  let prog = Prog.create () in
  let b = Builder.create prog ~name:"main" ~n_params:2 in
  let x = Builder.param b 0 and y = Builder.param b 1 in
  let a1 = Builder.add b x y in
  let a2 = Builder.add b x y in       (* same expression *)
  Builder.ret b (Builder.mul b a1 a2);
  Builder.finish b;
  let stats = Transform.Cse.run prog in
  Verifier.verify prog;
  Alcotest.(check int) "one merge" 1 stats.merged;
  Alcotest.(check int64) "result preserved" 49L
    (Value.to_int64
       (finished_value (run_main prog [ Value.of_int 3; Value.of_int 4 ])))

let test_cse_does_not_merge_loads () =
  let prog = Prog.create () in
  let b = Builder.create prog ~name:"main" ~n_params:0 in
  let base = Builder.alloc b (Builder.imm 1) in
  Builder.store b base (Builder.imm 1);
  let l1 = Builder.load b base in
  Builder.store b base (Builder.imm 2);
  let l2 = Builder.load b base in
  Builder.ret b (Builder.add b l1 l2);
  Builder.finish b;
  let stats = Transform.Cse.run prog in
  Alcotest.(check int) "loads untouched" 0 stats.merged;
  Alcotest.(check int64) "sees both stores" 3L
    (Value.to_int64 (finished_value (run_main prog [])))

let test_cse_respects_dominance () =
  (* The same expression in two sibling branches must NOT merge: neither
     block dominates the other. *)
  let prog = Prog.create () in
  let b = Builder.create prog ~name:"main" ~n_params:1 in
  let x = Builder.param b 0 in
  let c = Builder.gt b x (Builder.imm 0) in
  let vals =
    Builder.if_ b c
      ~then_:(fun () -> [ Builder.mul b x x ])
      ~else_:(fun () -> [ Builder.mul b x x ])
  in
  (match vals with [ v ] -> Builder.ret b (Reg v) | _ -> assert false);
  Builder.finish b;
  let stats = Transform.Cse.run prog in
  Verifier.verify prog;
  Alcotest.(check int) "no cross-branch merge" 0 stats.merged;
  Alcotest.(check int64) "behaviour" 25L
    (Value.to_int64 (finished_value (run_main prog [ Value.of_int 5 ])))

let test_cse_then_dce_shrinks () =
  let prog = Prog.create () in
  let b = Builder.create prog ~name:"main" ~n_params:1 in
  let x = Builder.param b 0 in
  let a1 = Builder.mul b x (Builder.imm 3) in
  let a2 = Builder.mul b x (Builder.imm 3) in
  Builder.ret b (Builder.add b a1 a2);
  Builder.finish b;
  let before = Prog.instr_count prog in
  let (_ : Transform.Cse.stats) = Transform.Cse.run prog in
  let (_ : Transform.Dce.stats) = Transform.Dce.run prog in
  Verifier.verify prog;
  Alcotest.(check bool) "shrank" true (Prog.instr_count prog < before);
  Alcotest.(check int64) "behaviour" 12L
    (Value.to_int64 (finished_value (run_main prog [ Value.of_int 2 ])))

(* ----- loop-invariant code motion ----- *)

let test_licm_hoists_invariant () =
  let prog = Prog.create () in
  let b = Builder.create prog ~name:"main" ~n_params:2 in
  let x = Builder.param b 0 in
  let n = Builder.param b 1 in
  let s =
    Workloads.Kutil.for1 b ~from:(Builder.imm 0) ~until:n
      ~init:(Builder.imm 0)
      ~body:(fun ~i acc ->
        (* x*3+7 is invariant; acc+i+it is not. *)
        let inv = Builder.add b (Builder.mul b x (Builder.imm 3)) (Builder.imm 7) in
        Builder.add b acc (Builder.add b i inv))
  in
  Builder.ret b s;
  Builder.finish b;
  let baseline =
    let mem = Interp.Memory.create () in
    Interp.Machine.run prog ~entry:"main"
      ~args:[ Value.of_int 5; Value.of_int 50 ] ~mem
  in
  let stats = Transform.Licm.run prog in
  Alcotest.(check int) "hoisted the invariant chain" 2 stats.hoisted;
  let after =
    let mem = Interp.Memory.create () in
    Interp.Machine.run prog ~entry:"main"
      ~args:[ Value.of_int 5; Value.of_int 50 ] ~mem
  in
  (match baseline.stop, after.stop with
   | Interp.Machine.Finished (Some a), Interp.Machine.Finished (Some b2) ->
     Alcotest.(check int64) "same result" (Value.to_int64 a) (Value.to_int64 b2)
   | _ -> Alcotest.fail "runs did not finish");
  Alcotest.(check bool)
    (Printf.sprintf "fewer dynamic steps (%d -> %d)" baseline.steps after.steps)
    true (after.steps < baseline.steps)

let test_licm_leaves_variant_code () =
  let prog = Prog.create () in
  let b = Builder.create prog ~name:"main" ~n_params:1 in
  let n = Builder.param b 0 in
  let s =
    Workloads.Kutil.for1 b ~from:(Builder.imm 0) ~until:n
      ~init:(Builder.imm 0)
      ~body:(fun ~i acc -> Builder.add b acc (Builder.mul b i i))
  in
  Builder.ret b s;
  Builder.finish b;
  let stats = Transform.Licm.run prog in
  Alcotest.(check int) "nothing hoisted" 0 stats.hoisted

let test_licm_never_hoists_loads_or_div () =
  let prog = Prog.create () in
  let b = Builder.create prog ~name:"main" ~n_params:2 in
  let base = Builder.param b 0 in
  let n = Builder.param b 1 in
  let s =
    Workloads.Kutil.for1 b ~from:(Builder.imm 0) ~until:n
      ~init:(Builder.imm 0)
      ~body:(fun ~i:_ acc ->
        (* Invariant operands, but a load and a division: must stay put. *)
        let v = Builder.load b base in
        let d = Builder.sdiv b (Builder.imm 100) v in
        Builder.add b acc d)
  in
  Builder.ret b s;
  Builder.finish b;
  let stats = Transform.Licm.run prog in
  Alcotest.(check int) "loads and divisions stay" 0 stats.hoisted

let test_licm_preserves_workloads () =
  List.iter
    (fun name ->
      let w = Workloads.Registry.find name in
      let reference = Workloads.Workload.golden w ~role:Workloads.Workload.Test in
      let prog = w.build () in
      let (_ : Transform.Licm.stats) = Transform.Licm.run prog in
      let optimized =
        Workloads.Workload.golden w ~prog ~role:Workloads.Workload.Test
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s output preserved" name)
        true
        (Fidelity.Metric.identical ~reference:reference.output optimized.output))
    [ "jpegenc"; "g721dec"; "kmeans"; "tex_synth" ]

(* ----- tracer ----- *)

let test_trace_captures_values () =
  let prog = Prog.create () in
  let b = Builder.create prog ~name:"main" ~n_params:0 in
  let x = Builder.add b (Builder.imm 2) (Builder.imm 3) in
  let y = Builder.mul b x (Builder.imm 10) in
  Builder.ret b y;
  Builder.finish b;
  let mem = Interp.Memory.create () in
  let events, result =
    Interp.Trace.first_values ~limit:10 prog ~entry:"main" ~args:[] ~mem
  in
  (match result.stop with
   | Interp.Machine.Finished _ -> ()
   | _ -> Alcotest.fail "run failed");
  Alcotest.(check int) "two events" 2 (List.length events);
  (match events with
   | [ e1; e2 ] ->
     Alcotest.(check int64) "first value" 5L (Value.to_int64 e1.value);
     Alcotest.(check int64) "second value" 50L (Value.to_int64 e2.value)
   | _ -> Alcotest.fail "unexpected events");
  let rendered = Interp.Trace.render prog events in
  Alcotest.(check int) "rendered lines" 2 (List.length rendered)

let test_trace_respects_limit () =
  let prog = Prog.create () in
  let b = Builder.create prog ~name:"main" ~n_params:0 in
  let s =
    Workloads.Kutil.for1 b ~from:(Builder.imm 0) ~until:(Builder.imm 1000)
      ~init:(Builder.imm 0)
      ~body:(fun ~i acc -> Builder.add b acc i)
  in
  Builder.ret b s;
  Builder.finish b;
  let mem = Interp.Memory.create () in
  let events, (_ : Interp.Machine.result) =
    Interp.Trace.first_values ~limit:25 prog ~entry:"main" ~args:[] ~mem
  in
  Alcotest.(check int) "limited" 25 (List.length events)

(* ----- liveness ----- *)

let test_liveness_loop () =
  let prog = Prog.create () in
  let b = Builder.create prog ~name:"main" ~n_params:1 in
  let n = Builder.param b 0 in
  let s =
    Workloads.Kutil.for1 b ~from:(Builder.imm 0) ~until:n
      ~init:(Builder.imm 0)
      ~body:(fun ~i acc -> Builder.add b acc i)
  in
  Builder.ret b s;
  Builder.finish b;
  let f = Prog.find_func prog "main" in
  let cfg = Analysis.Cfg.of_func f in
  let live = Analysis.Liveness.compute cfg in
  (* The loop bound (parameter) is live into the loop header. *)
  let header =
    List.find
      (fun (bl : Block.t) -> bl.phis <> [])
      f.blocks
  in
  let n_reg = List.hd f.params in
  Alcotest.(check bool) "bound live at header" true
    (List.mem n_reg (Analysis.Liveness.live_in live header.label));
  Alcotest.(check bool) "pressure positive" true
    (Analysis.Liveness.max_pressure live > 0)

let test_liveness_dead_value () =
  let prog = Prog.create () in
  let b = Builder.create prog ~name:"main" ~n_params:1 in
  let x = Builder.param b 0 in
  let (_dead : Instr.operand) = Builder.mul b x x in
  Builder.ret b x;
  Builder.finish b;
  let f = Prog.find_func prog "main" in
  let live = Analysis.Liveness.compute (Analysis.Cfg.of_func f) in
  (* The dead product is not live anywhere (single block: live_in = uses). *)
  let entry_live = Analysis.Liveness.live_in live f.entry in
  Alcotest.(check (list int)) "only the param is live-in" f.params entry_live

(* ----- control-flow checking ----- *)

let test_cfc_preserves_semantics () =
  List.iter
    (fun name ->
      let w = Workloads.Registry.find name in
      let reference = Workloads.Workload.golden w ~role:Workloads.Workload.Test in
      let p = Softft.protect w Softft.Cfc_only in
      let protected_run = Softft.golden p ~role:Workloads.Workload.Test in
      Alcotest.(check bool)
        (Printf.sprintf "%s output preserved under CFC" name)
        true
        (Fidelity.Metric.identical ~reference:reference.output
           protected_run.output))
    [ "g721enc"; "tiff2bw"; "kmeans" ]

let test_cfc_inserts_checks () =
  let p = Softft.protect (Workloads.Registry.find "jpegdec") Softft.Cfc_only in
  Alcotest.(check bool) "signature checks inserted" true
    (p.static_stats.value_checks > 5)

let test_cfc_detects_branch_faults () =
  let w = Workloads.Registry.find "g721enc" in
  let detections technique =
    let p = Softft.protect w technique in
    let subject = Softft.subject p ~role:Workloads.Workload.Test in
    let summary, (_ : Faults.Campaign.trial list) =
      Faults.Campaign.run ~seed:5 ~fault_kind:Interp.Machine.Branch_target
        subject ~trials:80
    in
    Faults.Campaign.count summary Faults.Classify.Sw_detect
  in
  let without = detections Softft.Dup_valchk in
  let with_cfc = detections Softft.Dup_valchk_cfc in
  Alcotest.(check bool)
    (Printf.sprintf "CFC detects branch faults (%d -> %d)" without with_cfc)
    true
    (with_cfc > without)

let test_branch_fault_changes_flow () =
  (* A branch-target fault on an unprotected program must produce at least
     some non-masked outcome over many trials. *)
  let w = Workloads.Registry.find "g721enc" in
  let p = Softft.protect w Softft.Original in
  let subject = Softft.subject p ~role:Workloads.Workload.Test in
  let summary, (_ : Faults.Campaign.trial list) =
    Faults.Campaign.run ~seed:6 ~fault_kind:Interp.Machine.Branch_target
      subject ~trials:80
  in
  Alcotest.(check bool) "not everything masked" true
    (Faults.Campaign.count summary Faults.Classify.Masked < 80)

let tests =
  [ Alcotest.test_case "fold: constants" `Quick test_fold_constants;
    Alcotest.test_case "fold: identities" `Quick test_fold_identities;
    Alcotest.test_case "fold: constant branch" `Quick test_fold_constant_branch;
    Alcotest.test_case "fold: keeps div trap" `Quick test_fold_keeps_division_trap;
    Alcotest.test_case "dce: removes dead" `Quick test_dce_removes_dead;
    Alcotest.test_case "dce: keeps side effects" `Quick test_dce_keeps_side_effects;
    Alcotest.test_case "optimize: workloads preserved" `Slow
      test_optimize_pipeline_on_workloads;
    Alcotest.test_case "cse: merges duplicates" `Quick test_cse_merges_duplicates;
    Alcotest.test_case "cse: loads untouched" `Quick test_cse_does_not_merge_loads;
    Alcotest.test_case "cse: dominance scoped" `Quick test_cse_respects_dominance;
    Alcotest.test_case "cse+dce: shrinks" `Quick test_cse_then_dce_shrinks;
    Alcotest.test_case "licm: hoists invariants" `Quick test_licm_hoists_invariant;
    Alcotest.test_case "licm: leaves variant code" `Quick
      test_licm_leaves_variant_code;
    Alcotest.test_case "licm: loads and div stay" `Quick
      test_licm_never_hoists_loads_or_div;
    Alcotest.test_case "licm: workloads preserved" `Slow
      test_licm_preserves_workloads;
    Alcotest.test_case "trace: captures values" `Quick test_trace_captures_values;
    Alcotest.test_case "trace: respects limit" `Quick test_trace_respects_limit;
    Alcotest.test_case "liveness: loop bound" `Quick test_liveness_loop;
    Alcotest.test_case "liveness: dead value" `Quick test_liveness_dead_value;
    Alcotest.test_case "cfc: preserves semantics" `Quick test_cfc_preserves_semantics;
    Alcotest.test_case "cfc: inserts checks" `Quick test_cfc_inserts_checks;
    Alcotest.test_case "cfc: detects branch faults" `Quick
      test_cfc_detects_branch_faults;
    Alcotest.test_case "branch fault: perturbs flow" `Quick
      test_branch_fault_changes_flow;
  ]
