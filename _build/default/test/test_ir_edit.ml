(** Unit tests for the IR editing primitives used by the transformation
    passes (block insertion, program queries) and the builder's error
    detection. *)

open Ir

let mk_instr prog ?dest kind =
  { Instr.uid = Prog.fresh_uid prog; dest; kind; origin = Instr.From_source }

let mk_instr prog ~dest kind = mk_instr prog ?dest:(Some dest) kind

let const_instr prog n =
  let r = Prog.fresh_reg prog in
  (r, mk_instr prog ~dest:r (Instr.Const (Value.of_int n)))

let block_with prog ns =
  let b = Block.create ~label:"b" in
  let instrs = List.map (fun n -> snd (const_instr prog n)) ns in
  Block.append b instrs;
  b

let consts_of b =
  Array.to_list b.Block.body
  |> List.map (fun (ins : Instr.t) ->
       match ins.kind with
       | Instr.Const (Value.Int i) -> Int64.to_int i
       | _ -> -1)

(* ----- Block editing ----- *)

let test_insert_after_middle () =
  let prog = Prog.create () in
  let b = block_with prog [ 1; 2; 3 ] in
  let target = b.Block.body.(1) in
  Block.insert_after b ~after_uid:target.uid [ snd (const_instr prog 99) ];
  Alcotest.(check (list int)) "after middle" [ 1; 2; 99; 3 ] (consts_of b)

let test_insert_after_last () =
  let prog = Prog.create () in
  let b = block_with prog [ 1; 2 ] in
  let target = b.Block.body.(1) in
  Block.insert_after b ~after_uid:target.uid [ snd (const_instr prog 99) ];
  Alcotest.(check (list int)) "after last" [ 1; 2; 99 ] (consts_of b)

let test_insert_before_first () =
  let prog = Prog.create () in
  let b = block_with prog [ 1; 2 ] in
  let target = b.Block.body.(0) in
  Block.insert_before b ~before_uid:target.uid [ snd (const_instr prog 99) ];
  Alcotest.(check (list int)) "before first" [ 99; 1; 2 ] (consts_of b)

let test_insert_multiple () =
  let prog = Prog.create () in
  let b = block_with prog [ 1 ] in
  let target = b.Block.body.(0) in
  Block.insert_after b ~after_uid:target.uid
    [ snd (const_instr prog 7); snd (const_instr prog 8) ];
  Alcotest.(check (list int)) "order kept" [ 1; 7; 8 ] (consts_of b)

let test_insert_unknown_uid () =
  let prog = Prog.create () in
  let b = block_with prog [ 1 ] in
  Alcotest.check_raises "missing uid" Not_found (fun () ->
    Block.insert_after b ~after_uid:123456 [ snd (const_instr prog 9) ])

(* ----- Prog queries ----- *)

let test_prog_find_instr () =
  let prog = Prog.create () in
  let b = Builder.create prog ~name:"main" ~n_params:0 in
  let x = Builder.add b (Builder.imm 1) (Builder.imm 2) in
  Builder.ret b x;
  Builder.finish b;
  let f = Prog.find_func prog "main" in
  let entry = Func.entry_block f in
  let ins = entry.Block.body.(0) in
  (match Prog.find_instr prog ins.uid with
   | Some (found_f, found_b, found_ins) ->
     Alcotest.(check string) "function" "main" found_f.Func.name;
     Alcotest.(check string) "block" entry.Block.label found_b.Block.label;
     Alcotest.(check int) "uid" ins.uid found_ins.uid
   | None -> Alcotest.fail "instruction not found");
  Alcotest.(check bool) "unknown uid" true (Prog.find_instr prog 10_000 = None)

let test_prog_duplicate_function_rejected () =
  let prog = Prog.create () in
  let (_ : Func.t) = Prog.add_func prog ~name:"f" ~n_params:0 ~entry_label:"e" in
  Alcotest.(check bool) "duplicate rejected" true
    (try
       ignore (Prog.add_func prog ~name:"f" ~n_params:0 ~entry_label:"e");
       false
     with Invalid_argument _ -> true)

let test_fresh_counters_monotone () =
  let prog = Prog.create () in
  let a = Prog.fresh_reg prog and b = Prog.fresh_reg prog in
  let u = Prog.fresh_uid prog and v = Prog.fresh_uid prog in
  Alcotest.(check bool) "regs distinct" true (a <> b);
  Alcotest.(check bool) "uids distinct" true (u <> v)

(* ----- Builder error paths ----- *)

let test_builder_rejects_emit_after_terminator () =
  let prog = Prog.create () in
  let b = Builder.create prog ~name:"main" ~n_params:0 in
  Builder.ret b (Builder.imm 0);
  Alcotest.(check bool) "emit after ret" true
    (try
       ignore (Builder.add b (Builder.imm 1) (Builder.imm 2));
       false
     with Invalid_argument _ -> true)

let test_builder_rejects_double_terminator () =
  let prog = Prog.create () in
  let b = Builder.create prog ~name:"main" ~n_params:0 in
  Builder.ret b (Builder.imm 0);
  Alcotest.(check bool) "double terminator" true
    (try Builder.ret b (Builder.imm 1); false
     with Invalid_argument _ -> true)

let test_builder_rejects_unterminated_finish () =
  let prog = Prog.create () in
  let b = Builder.create prog ~name:"main" ~n_params:0 in
  let (_ : Instr.operand) = Builder.add b (Builder.imm 1) (Builder.imm 2) in
  Alcotest.(check bool) "finish without terminator" true
    (try Builder.finish b; false with Invalid_argument _ -> true)

let test_builder_rejects_mismatched_loop_arity () =
  let prog = Prog.create () in
  let b = Builder.create prog ~name:"main" ~n_params:0 in
  Alcotest.(check bool) "loop arity" true
    (try
       ignore
         (Builder.loop b
            ~init:[ Builder.imm 0; Builder.imm 1 ]
            ~cond:(fun _ -> Builder.imm 0)
            ~body:(fun _ -> [ Builder.imm 0 ]));
       false
     with Invalid_argument _ -> true)

let test_builder_rejects_mismatched_if_arity () =
  let prog = Prog.create () in
  let b = Builder.create prog ~name:"main" ~n_params:0 in
  Alcotest.(check bool) "if arity" true
    (try
       ignore
         (Builder.if_ b (Builder.imm 1)
            ~then_:(fun () -> [ Builder.imm 1 ])
            ~else_:(fun () -> []));
       false
     with Invalid_argument _ -> true)

(* ----- Instr helpers ----- *)

let test_instr_operand_views () =
  let prog = Prog.create () in
  let r1 = Prog.fresh_reg prog and r2 = Prog.fresh_reg prog in
  let ins =
    mk_instr prog ~dest:(Prog.fresh_reg prog)
      (Instr.Binop (Opcode.Add, Instr.Reg r1, Instr.Reg r2))
  in
  Alcotest.(check (list int)) "uses" [ r1; r2 ] (Instr.uses ins);
  let mapped =
    Instr.map_operands
      (fun op -> match op with Instr.Reg _ -> Instr.Imm Value.one | x -> x)
      ins
  in
  Alcotest.(check (list int)) "rewritten" [] (Instr.uses mapped)

let test_check_passes_semantics () =
  let open Instr in
  let i n = Value.of_int n in
  Alcotest.(check bool) "single hit" true (check_passes (Single (i 5)) (i 5));
  Alcotest.(check bool) "single miss" false (check_passes (Single (i 5)) (i 6));
  Alcotest.(check bool) "double hit" true
    (check_passes (Double (i 1, i 9)) (i 9));
  Alcotest.(check bool) "range inclusive" true
    (check_passes (Range (i 0, i 10)) (i 10));
  Alcotest.(check bool) "range miss" false
    (check_passes (Range (i 0, i 10)) (i 11));
  (* Kind mismatch fails closed: an int range rejects a float value. *)
  Alcotest.(check bool) "kind mismatch rejected" false
    (check_passes (Range (i 0, i 10)) (Value.of_float 5.0))

let tests =
  [ Alcotest.test_case "block: insert after middle" `Quick test_insert_after_middle;
    Alcotest.test_case "block: insert after last" `Quick test_insert_after_last;
    Alcotest.test_case "block: insert before first" `Quick test_insert_before_first;
    Alcotest.test_case "block: insert multiple" `Quick test_insert_multiple;
    Alcotest.test_case "block: unknown uid" `Quick test_insert_unknown_uid;
    Alcotest.test_case "prog: find instr" `Quick test_prog_find_instr;
    Alcotest.test_case "prog: duplicate function" `Quick
      test_prog_duplicate_function_rejected;
    Alcotest.test_case "prog: fresh counters" `Quick test_fresh_counters_monotone;
    Alcotest.test_case "builder: emit after terminator" `Quick
      test_builder_rejects_emit_after_terminator;
    Alcotest.test_case "builder: double terminator" `Quick
      test_builder_rejects_double_terminator;
    Alcotest.test_case "builder: unterminated finish" `Quick
      test_builder_rejects_unterminated_finish;
    Alcotest.test_case "builder: loop arity" `Quick
      test_builder_rejects_mismatched_loop_arity;
    Alcotest.test_case "builder: if arity" `Quick
      test_builder_rejects_mismatched_if_arity;
    Alcotest.test_case "instr: operand views" `Quick test_instr_operand_views;
    Alcotest.test_case "instr: check semantics" `Quick test_check_passes_semantics;
  ]
