(** Tests for the value-profiling library: the on-line histogram
    (Algorithm 1), compact-range extraction (Algorithm 2) and check-shape
    derivation (Figure 6). *)

open Profiling

(* ----- Histogram (Algorithm 1) ----- *)

let test_histogram_bin_bound () =
  let h = Histogram.create ~max_bins:5 () in
  for i = 0 to 999 do
    Histogram.insert h (float_of_int (i * 37 mod 101))
  done;
  Alcotest.(check bool) "<= 5 bins" true (Histogram.n_bins h <= 5)

let test_histogram_mass_conserved () =
  let h = Histogram.create ~max_bins:5 () in
  for i = 0 to 499 do
    Histogram.insert h (float_of_int (i mod 23))
  done;
  let mass = List.fold_left (fun a b -> a + b.Histogram.m) 0 (Histogram.bins h) in
  Alcotest.(check int) "mass = inserts" 500 mass;
  Alcotest.(check int) "total tracked" 500 (Histogram.total h)

let test_histogram_bins_sorted_disjoint () =
  let h = Histogram.create ~max_bins:4 () in
  let rng = Rng.create 5 in
  for _ = 1 to 300 do
    Histogram.insert h (Rng.float_range rng (-50.0) 50.0)
  done;
  let bins = Histogram.bins h in
  let rec check = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check bool) "ordered" true (a.Histogram.rb <= b.Histogram.lb);
      check rest
    | [ _ ] | [] -> ()
  in
  check bins;
  List.iter
    (fun b -> Alcotest.(check bool) "lb<=rb" true (b.Histogram.lb <= b.Histogram.rb))
    bins

let test_histogram_hull_covers_all () =
  let h = Histogram.create () in
  let values = [ 3.0; -7.0; 22.0; 5.0; 5.0; 14.0; -2.0; 9.0; 1.0 ] in
  List.iter (Histogram.insert h) values;
  match Histogram.hull h with
  | None -> Alcotest.fail "empty hull"
  | Some (lo, hi) ->
    List.iter
      (fun v -> Alcotest.(check bool) "in hull" true (v >= lo && v <= hi))
      values

let test_histogram_single_value () =
  let h = Histogram.create () in
  for _ = 1 to 100 do Histogram.insert h 42.0 done;
  Alcotest.(check int) "one bin" 1 (Histogram.n_bins h);
  match Histogram.point_bins h with
  | [ p ] ->
    Alcotest.(check (float 0.0)) "point at 42" 42.0 p.Histogram.lb;
    Alcotest.(check int) "full mass" 100 p.Histogram.m
  | _ -> Alcotest.fail "expected one point bin"

(* ----- Range extraction (Algorithm 2) ----- *)

let test_range_within_hull () =
  let h = Histogram.create () in
  let rng = Rng.create 11 in
  for _ = 1 to 400 do
    Histogram.insert h (Rng.float_range rng 0.0 100.0)
  done;
  match Range.extract h ~r_thr:1000.0, Histogram.hull h with
  | Some r, Some (lo, hi) ->
    Alcotest.(check bool) "lo in hull" true (r.lo >= lo);
    Alcotest.(check bool) "hi in hull" true (r.hi <= hi);
    Alcotest.(check bool) "coverage in [0,1]" true
      (r.coverage >= 0.0 && r.coverage <= 1.0)
  | _ -> Alcotest.fail "extraction failed"

let test_range_respects_threshold () =
  let h = Histogram.create ~max_bins:5 () in
  (* Two clusters far apart; a small threshold must keep one cluster. *)
  for _ = 1 to 100 do Histogram.insert h 10.0 done;
  for _ = 1 to 30 do Histogram.insert h 10000.0 done;
  match Range.extract h ~r_thr:100.0 with
  | Some r ->
    Alcotest.(check bool) "range is compact" true (Range.width r <= 100.0);
    Alcotest.(check (float 0.0)) "picked heavy cluster" 10.0 r.lo
  | None -> Alcotest.fail "extraction failed"

let test_range_full_coverage_when_wide () =
  let h = Histogram.create () in
  for i = 0 to 99 do Histogram.insert h (float_of_int i) done;
  match Range.extract h ~r_thr:1e9 with
  | Some r -> Alcotest.(check (float 1e-9)) "covers everything" 1.0 r.coverage
  | None -> Alcotest.fail "extraction failed"

(* ----- Check-shape derivation (Figure 6) ----- *)

let profile_of_values values =
  let t = Value_profile.create () in
  List.iter (fun v -> Value_profile.record t 1 v) values;
  t

let relaxed = { Value_profile.default_params with min_execs = 4 }

let test_single_value_check () =
  let t = profile_of_values (List.init 100 (fun _ -> Ir.Value.of_int 7)) in
  match Value_profile.check_kind ~params:relaxed t 1 with
  | Some (Ir.Instr.Single v) ->
    Alcotest.(check int64) "single 7" 7L (Ir.Value.to_int64 v)
  | _ -> Alcotest.fail "expected Single"

let test_double_value_check () =
  let vals =
    List.init 100 (fun i -> Ir.Value.of_int (if i mod 3 = 0 then 0 else 1))
  in
  match Value_profile.check_kind ~params:relaxed (profile_of_values vals) 1 with
  | Some (Ir.Instr.Double (a, b)) ->
    let pair =
      List.sort compare [ Ir.Value.to_int64 a; Ir.Value.to_int64 b ]
    in
    Alcotest.(check (list int64)) "0 and 1" [ 0L; 1L ] pair
  | _ -> Alcotest.fail "expected Double"

let test_range_check () =
  let vals = List.init 200 (fun i -> Ir.Value.of_int (i mod 50)) in
  match Value_profile.check_kind ~params:relaxed (profile_of_values vals) 1 with
  | Some (Ir.Instr.Range (lo, hi)) ->
    (* The widened range must contain every profiled value. *)
    List.iter
      (fun v ->
        Alcotest.(check bool) "value passes own check" true
          (Ir.Instr.check_passes (Ir.Instr.Range (lo, hi)) v))
      vals
  | _ -> Alcotest.fail "expected Range"

let test_no_check_for_wild_values () =
  (* Exponentially exploding values: no compact range exists. *)
  let vals = List.init 60 (fun i -> Ir.Value.of_float (2.0 ** float_of_int i)) in
  match Value_profile.check_kind ~params:relaxed (profile_of_values vals) 1 with
  | None -> ()
  | Some _ -> Alcotest.fail "wild values must not be amenable"

let test_min_execs_filter () =
  let t = profile_of_values [ Ir.Value.of_int 1; Ir.Value.of_int 1 ] in
  Alcotest.(check bool) "too few executions" true
    (Value_profile.check_kind t 1 = None)

let test_mixed_kinds_not_amenable () =
  let t = profile_of_values [] in
  for _ = 1 to 50 do
    Value_profile.record t 1 (Ir.Value.of_int 1);
    Value_profile.record t 1 (Ir.Value.of_float 1.0)
  done;
  Alcotest.(check bool) "mixed kinds rejected" true
    (Value_profile.check_kind ~params:relaxed t 1 = None)

let test_collect_on_program () =
  (* End-to-end: profile a real loop and find amenable instructions. *)
  let prog = Ir.Prog.create () in
  let b = Ir.Builder.create prog ~name:"main" ~n_params:0 in
  let s =
    Workloads.Kutil.for1 b ~from:(Ir.Builder.imm 0) ~until:(Ir.Builder.imm 500)
      ~init:(Ir.Builder.imm 0)
      ~body:(fun ~i acc ->
        let masked = Ir.Builder.and_ b i (Ir.Builder.imm 15) in
        Ir.Builder.add b acc masked)
  in
  Ir.Builder.ret b s;
  Ir.Builder.finish b;
  let mem = Interp.Memory.create () in
  let t, result = Value_profile.collect prog ~entry:"main" ~args:[] ~mem in
  (match result.stop with
   | Interp.Machine.Finished _ -> ()
   | _ -> Alcotest.fail "profiling run failed");
  let amenable = Value_profile.amenable_uids t in
  Alcotest.(check bool) "found amenable instructions" true
    (List.length amenable > 0)

(* Property tests (qcheck). *)

let prop_histogram_bounds =
  QCheck.Test.make ~name:"histogram: bins bounded and mass conserved"
    ~count:100
    QCheck.(pair (int_range 2 8) (list_of_size (Gen.int_range 1 300) (float_range (-1e6) 1e6)))
    (fun (max_bins, values) ->
      QCheck.assume (values <> []);
      let h = Histogram.create ~max_bins () in
      List.iter (Histogram.insert h) values;
      let mass =
        List.fold_left (fun a b -> a + b.Histogram.m) 0 (Histogram.bins h)
      in
      Histogram.n_bins h <= max_bins && mass = List.length values)

let prop_range_subset =
  QCheck.Test.make ~name:"range: extraction stays within hull" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 200) (float_range (-1e4) 1e4))
    (fun values ->
      QCheck.assume (values <> []);
      let h = Histogram.create () in
      List.iter (Histogram.insert h) values;
      match Range.extract h ~r_thr:500.0, Histogram.hull h with
      | Some r, Some (lo, hi) ->
        r.lo >= lo && r.hi <= hi && r.mass <= Histogram.total h
      | None, _ | _, None -> false)

let prop_derived_check_accepts_profiled_values =
  QCheck.Test.make
    ~name:"checks: every profiled value passes its own derived check"
    ~count:100
    QCheck.(list_of_size (Gen.int_range 64 300) (int_range (-500) 500))
    (fun ints ->
      let t = Value_profile.create () in
      List.iter (fun n -> Value_profile.record t 9 (Ir.Value.of_int n)) ints;
      match Value_profile.check_kind t 9 with
      | None -> true
      | Some ck ->
        List.for_all (fun n -> Ir.Instr.check_passes ck (Ir.Value.of_int n)) ints)

let tests =
  [ Alcotest.test_case "histogram: bin bound" `Quick test_histogram_bin_bound;
    Alcotest.test_case "histogram: mass conserved" `Quick
      test_histogram_mass_conserved;
    Alcotest.test_case "histogram: sorted disjoint" `Quick
      test_histogram_bins_sorted_disjoint;
    Alcotest.test_case "histogram: hull" `Quick test_histogram_hull_covers_all;
    Alcotest.test_case "histogram: single value" `Quick test_histogram_single_value;
    Alcotest.test_case "range: within hull" `Quick test_range_within_hull;
    Alcotest.test_case "range: threshold" `Quick test_range_respects_threshold;
    Alcotest.test_case "range: full coverage" `Quick test_range_full_coverage_when_wide;
    Alcotest.test_case "checks: single" `Quick test_single_value_check;
    Alcotest.test_case "checks: double" `Quick test_double_value_check;
    Alcotest.test_case "checks: range" `Quick test_range_check;
    Alcotest.test_case "checks: wild values" `Quick test_no_check_for_wild_values;
    Alcotest.test_case "checks: min execs" `Quick test_min_execs_filter;
    Alcotest.test_case "checks: mixed kinds" `Quick test_mixed_kinds_not_amenable;
    Alcotest.test_case "collect: end to end" `Quick test_collect_on_program;
    QCheck_alcotest.to_alcotest prop_histogram_bounds;
    QCheck_alcotest.to_alcotest prop_range_subset;
    QCheck_alcotest.to_alcotest prop_derived_check_accepts_profiled_values;
  ]
