examples/custom_kernel.ml: Array Builder Faults Fidelity Interp Ir List Printf Prog Softft Value Workloads
