examples/check_tuning.mli:
