examples/quickstart.ml: Faults List Printf Softft Transform Workloads
