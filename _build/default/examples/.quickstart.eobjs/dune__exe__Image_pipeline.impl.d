examples/image_pipeline.ml: Array Char Faults Fidelity Hashtbl Interp List Option Printf Rng Softft Workloads
