examples/quickstart.mli:
