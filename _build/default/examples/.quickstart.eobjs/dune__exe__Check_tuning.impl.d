examples/check_tuning.ml: Faults Printf Profiling Softft String Workloads
