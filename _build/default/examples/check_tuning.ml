(** Tuning the expected-value checks: an ablation over the profiling
    heuristics of Section III-C.  Sweeps the range-width threshold (the
    R_thr of Algorithm 2) and the range slack, reporting how many checks
    are inserted, what they cost, how often they fire spuriously on the
    test input, and what coverage they buy.

    Run with: dune exec examples/check_tuning.exe *)

let trials = 150

let evaluate_params label params =
  let w = Workloads.Registry.find "jpegenc" in
  let p = Softft.protect ~params w Softft.Dup_valchk in
  let role = Workloads.Workload.Test in
  let baseline =
    Softft.golden (Softft.protect w Softft.Original) ~role
  in
  let golden = Softft.golden p ~role in
  let overhead = Softft.overhead ~baseline p ~role in
  let summary, (_ : Faults.Campaign.trial list) =
    Softft.campaign p ~role ~trials ~seed:23
  in
  let usdc =
    Faults.Campaign.percent_many summary
      [ Faults.Classify.Usdc_large; Faults.Classify.Usdc_small ]
  in
  let sw = Faults.Campaign.percent summary Faults.Classify.Sw_detect in
  Printf.printf "%-24s %7d %9.1f%% %10d %8.1f%% %8.1f%%\n" label
    p.static_stats.value_checks (100.0 *. overhead) golden.false_positives sw
    usdc

let () =
  Printf.printf
    "Ablation on jpegenc (Dup + val chks), %d trials per configuration\n\n"
    trials;
  Printf.printf "%-24s %7s %10s %10s %9s %9s\n" "configuration" "checks"
    "overhead" "false-pos" "SWDetect" "USDC";
  Printf.printf "%s\n" (String.make 75 '-');
  let base = Profiling.Value_profile.default_params in
  evaluate_params "default" base;
  evaluate_params "tight ranges (R=256)"
    { base with r_thr_abs = 256.0 };
  evaluate_params "wide ranges (R=65536)"
    { base with r_thr_abs = 65536.0 };
  evaluate_params "no slack"
    { base with slack = 0.0 };
  evaluate_params "double slack"
    { base with slack = 1.0 };
  evaluate_params "hot-only (execs>=512)"
    { base with min_execs = 512 };
  evaluate_params "everything (execs>=4)"
    { base with min_execs = 4 };
  Printf.printf
    "\nReading guide: more checks buy SWDetect coverage but cost overhead \
     and\nfalse positives (checks that fire on the fault-free test input \
     and are\ndisabled after one spurious recovery, paper \xc2\xa7V).\n"
