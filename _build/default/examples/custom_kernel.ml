(** Protecting your own kernel: the library is not limited to the 13 paper
    benchmarks.  This example writes a Sobel edge detector against the IR
    builder, wraps it as a workload, and evaluates all four protection
    techniques against it.

    Run with: dune exec examples/custom_kernel.exe *)

open Ir

let w_img, h_img = 40, 40

(* Sobel gradient magnitude: out(y,x) = |Gx| + |Gy| over the 3x3
   neighbourhood, borders zeroed.  The row checksum carried across the
   scanline loops is a state variable the protection pass will find. *)
let build () =
  let prog = Prog.create () in
  let b = Builder.create prog ~name:"main" ~n_params:4 in
  let img = Builder.param b 0 in
  let w = Builder.param b 1 in
  let h = Builder.param b 2 in
  let out = Builder.param b 3 in
  let px y x = Workloads.Kutil.get2 b img ~row:y ~ncols:w ~col:x in
  let checksum =
    Workloads.Kutil.for1 b ~from:(Builder.imm 1)
      ~until:(Builder.sub b h (Builder.imm 1))
      ~init:(Builder.imm 0)
      ~body:(fun ~i:y sum_row ->
        Workloads.Kutil.for1 b ~from:(Builder.imm 1)
          ~until:(Builder.sub b w (Builder.imm 1))
          ~init:sum_row
          ~body:(fun ~i:x sum ->
            let ym1 = Builder.sub b y (Builder.imm 1) in
            let yp1 = Builder.add b y (Builder.imm 1) in
            let xm1 = Builder.sub b x (Builder.imm 1) in
            let xp1 = Builder.add b x (Builder.imm 1) in
            (* Gx = (tr + 2*r + br) - (tl + 2*l + bl) *)
            let right =
              Builder.add b
                (Builder.add b (px ym1 xp1) (px yp1 xp1))
                (Builder.mul b (px y xp1) (Builder.imm 2))
            in
            let left =
              Builder.add b
                (Builder.add b (px ym1 xm1) (px yp1 xm1))
                (Builder.mul b (px y xm1) (Builder.imm 2))
            in
            let gx = Builder.sub b right left in
            (* Gy = (bl + 2*b + br) - (tl + 2*t + tr) *)
            let bottom =
              Builder.add b
                (Builder.add b (px yp1 xm1) (px yp1 xp1))
                (Builder.mul b (px yp1 x) (Builder.imm 2))
            in
            let top =
              Builder.add b
                (Builder.add b (px ym1 xm1) (px ym1 xp1))
                (Builder.mul b (px ym1 x) (Builder.imm 2))
            in
            let gy = Builder.sub b bottom top in
            let mag =
              Builder.add b (Workloads.Kutil.iabs b gx)
                (Workloads.Kutil.iabs b gy)
            in
            let mag = Workloads.Kutil.clamp b mag ~lo:0 ~hi:255 in
            Workloads.Kutil.set2 b out ~row:y ~ncols:w ~col:x mag;
            Builder.add b sum mag))
  in
  Builder.ret b checksum;
  Builder.finish b;
  prog

let fresh_state role =
  let seed =
    match role with Workloads.Workload.Train -> 301 | Workloads.Workload.Test -> 302
  in
  let pixels = Workloads.Synth.gray_image ~seed ~w:w_img ~h:h_img in
  let mem = Interp.Memory.create () in
  let img = Interp.Memory.alloc_ints mem pixels in
  let out = Interp.Memory.alloc mem (w_img * h_img) in
  { Faults.Campaign.mem;
    args =
      [ Value.of_int img; Value.of_int w_img; Value.of_int h_img;
        Value.of_int out ];
    read_output =
      (fun (_ : Value.t option) ->
        Array.map float_of_int
          (Interp.Memory.read_ints_tolerant mem out (w_img * h_img))) }

let sobel : Workloads.Workload.t =
  { name = "sobel";
    suite = "custom";
    category = "image";
    description = "Sobel edge detector";
    train_desc = "train 40x40 image";
    test_desc = "test 40x40 image";
    metric = Fidelity.Metric.psnr_spec 30.0;
    build;
    fresh_state }

let () =
  Printf.printf "custom workload: %s\n\n" sobel.description;
  Printf.printf "%-18s %10s %9s %8s %8s %8s\n" "technique" "overhead" "USDC%"
    "SW%" "HW%" "Masked%";
  let baseline =
    Softft.golden (Softft.protect sobel Softft.Original)
      ~role:Workloads.Workload.Test
  in
  List.iter
    (fun technique ->
      let p = Softft.protect sobel technique in
      let overhead =
        Softft.overhead ~baseline p ~role:Workloads.Workload.Test
      in
      let summary, (_ : Faults.Campaign.trial list) =
        Softft.campaign p ~role:Workloads.Workload.Test ~trials:150 ~seed:11
      in
      let pct os = Faults.Campaign.percent_many summary os in
      Printf.printf "%-18s %9.1f%% %8.1f%% %7.1f%% %7.1f%% %7.1f%%\n"
        (Softft.technique_name technique)
        (100.0 *. overhead)
        (pct [ Faults.Classify.Usdc_large; Faults.Classify.Usdc_small ])
        (pct [ Faults.Classify.Sw_detect ])
        (pct [ Faults.Classify.Hw_detect ])
        (pct [ Faults.Classify.Masked; Faults.Classify.Asdc ]))
    Softft.all_techniques
