(** Quickstart: protect a benchmark with the paper's technique and measure
    what it buys.

    Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. Pick a workload from the paper's Table I suite. *)
  let w = Workloads.Registry.find "jpegdec" in
  Printf.printf "workload: %s (%s) — %s\n" w.name w.suite w.description;

  (* 2. Protect it: value-profile on the training input, duplicate the
     producer chains of its state variables, insert expected-value checks
     (Optimizations 1 and 2 apply automatically). *)
  let p = Softft.protect w Softft.Dup_valchk in
  let s = p.static_stats in
  Printf.printf "static IR instructions : %d\n" s.original_instrs;
  Printf.printf "state variables        : %d\n" s.state_vars;
  Printf.printf "duplicated instructions: %d (%.1f%%)\n" s.duplicated_instrs
    (100.0 *. Transform.Pipeline.duplicated_fraction s);
  Printf.printf "expected-value checks  : %d (%.1f%%)\n" s.value_checks
    (100.0 *. Transform.Pipeline.value_check_fraction s);

  (* 3. Runtime overhead versus the unmodified program (simulated cycles). *)
  let baseline =
    Softft.golden (Softft.protect w Softft.Original) ~role:Workloads.Workload.Test
  in
  let overhead = Softft.overhead ~baseline p ~role:Workloads.Workload.Test in
  Printf.printf "runtime overhead       : %.1f%%\n" (100.0 *. overhead);

  (* 4. Statistical fault injection: one random register bit flip per trial,
     classified against the fault-free output. *)
  let trials = 200 in
  let summary, (_ : Faults.Campaign.trial list) =
    Softft.campaign p ~role:Workloads.Workload.Test ~trials ~seed:7
  in
  Printf.printf "\nfault-injection outcomes over %d trials:\n" trials;
  List.iter
    (fun outcome ->
      Printf.printf "  %-12s %5.1f%%\n"
        (Faults.Classify.name outcome)
        (Faults.Campaign.percent summary outcome))
    Faults.Classify.all;
  let usdc =
    Faults.Campaign.percent_many summary
      [ Faults.Classify.Usdc_large; Faults.Classify.Usdc_small ]
  in
  Printf.printf
    "\nunacceptable silent data corruptions: %.1f%% (+-%.1f at 95%% conf.)\n"
    usdc
    (100.0 *. Softft.margin_of_error ~trials ~proportion:(usdc /. 100.0))
