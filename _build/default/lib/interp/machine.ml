open Ir

(** The simulated machine: an IR interpreter with a virtual register file per
    call frame, a cycle cost model, software-check semantics and single-bit
    fault injection into live registers.

    This stands in for the paper's GEM5 ARMv7-a model: the fault target (the
    architectural register file), the outcome signals (software check hits,
    memory-access symptoms, infinite loops) and the relative runtime (cycle
    model) are the quantities the evaluation needs. *)

type trap =
  | Segfault of int
  | Division_by_zero
  | Kind_confusion of string
  | Undefined_register of Instr.reg
  | Unknown_function of string

type detection = {
  check_uid : int;
  dup_check : bool;       (** true: duplication compare; false: value check *)
}

type fault_kind =
  | Register_bit     (** flip one bit of one live register (the paper's model) *)
  | Branch_target    (** corrupt the target of the next taken branch — the
                         fault class the paper defers to signature-based
                         control-flow checking (Â§IV-C) *)

(** A single injected fault, recorded for outcome analysis. *)
type injection = {
  inj_step : int;
  inj_kind : fault_kind;
  inj_reg : Instr.reg;    (** -1 for branch-target faults *)
  inj_bit : int;          (** -1 for branch-target faults *)
  before : Value.t;
  after : Value.t;
}

type stop =
  | Finished of Value.t option
  | Trapped of trap
  | Sw_detected of detection
  | Out_of_fuel

type result = {
  stop : stop;
  steps : int;
  cycles : int;
  valchk_failures : int;          (** dynamic count of ignored check failures *)
  failed_check_uids : int list;   (** distinct uids of value checks that failed
                                      without stopping the run *)
  injection : injection option;   (** what was actually flipped, if anything *)
}

type valchk_mode =
  | Detect     (** a failing value check stops the run (fault detected) *)
  | Record     (** failures are counted and execution continues; used to
                   measure the false-positive rate on fault-free runs *)

type fault_plan = {
  at_step : int;
  fault_rng : Rng.t;
  kind : fault_kind;
}

let register_fault ~at_step ~fault_rng = { at_step; fault_rng; kind = Register_bit }

type config = {
  fuel : int;
  mode : valchk_mode;
  on_def : (int -> Value.t -> unit) option;
      (** profiling hook: called with (uid, value) for each dynamically
          executed value-producing instruction *)
  fault : fault_plan option;
  disabled_checks : (int, unit) Hashtbl.t;
      (** value checks that fire on the fault-free run: per the paper, a
          check whose recovery fails to make it pass is executed once and
          then ignored, so campaigns disable such checks instead of counting
          their failures as detections *)
}

let default_config =
  { fuel = 200_000_000; mode = Detect; on_def = None; fault = None;
    disabled_checks = Hashtbl.create 1 }

(* Internal signalling exceptions. *)
exception Stop_detected of detection
exception Stop_trap of trap

type frame = {
  func : Func.t;
  values : Value.t array;
  defined : bool array;
  (** ring of the most recent register writes — the modelled architectural
      register file contents (see [arch_registers]) *)
  recent : int array;
  mutable recent_n : int;
  mutable recent_pos : int;
  mutable block : Block.t;
  mutable idx : int;              (** next body-instruction index *)
  mutable prev_label : string;
  ret_dest : Instr.reg option;    (** caller register receiving the result *)
}

type state = {
  prog : Prog.t;
  mem : Memory.t;
  config : config;
  mutable stack : frame list;
  mutable steps : int;
  mutable cycles : int;
  mutable valchk_failures : int;
  mutable failed_uids : (int, unit) Hashtbl.t;
  mutable injection : injection option;
  mutable fault_pending : fault_plan option;
  mutable branch_fault_armed : Rng.t option;
      (** a pending branch-target corruption waiting for the next branch *)
  mutable slack_credit : int;     (** spare-issue-slot account, see Cost *)
}

(* Reads refresh the ring too: a register consulted every iteration (a loop
   bound, a base address) stays resident in a real register file and keeps
   absorbing faults, even though it was written long ago. *)
let read _st (fr : frame) op =
  match op with
  | Instr.Imm v -> v
  | Instr.Reg r ->
    if fr.defined.(r) then begin
      fr.recent.(fr.recent_pos) <- r;
      fr.recent_pos <- (fr.recent_pos + 1) land (Array.length fr.recent - 1);
      if fr.recent_n < Array.length fr.recent then
        fr.recent_n <- fr.recent_n + 1;
      fr.values.(r)
    end
    else raise (Stop_trap (Undefined_register r));
  [@@inline]

let write (fr : frame) r v =
  if not fr.defined.(r) then fr.defined.(r) <- true;
  fr.recent.(fr.recent_pos) <- r;
  fr.recent_pos <- (fr.recent_pos + 1) land (Array.length fr.recent - 1);
  if fr.recent_n < Array.length fr.recent then fr.recent_n <- fr.recent_n + 1;
  fr.values.(r) <- v
  [@@inline]

let new_frame (st : state) (func : Func.t) ~args ~ret_dest =
  let values = Array.make st.prog.next_reg Value.zero in
  let defined = Array.make st.prog.next_reg false in
  let fr =
    { func; values; defined;
      recent = Array.make 16 0; recent_n = 0; recent_pos = 0;
      block = Func.entry_block func; idx = 0;
      prev_label = ""; ret_dest }
  in
  (try List.iter2 (fun r v -> write fr r v) func.params args
   with Invalid_argument _ ->
     invalid_arg
       (Printf.sprintf "call to %s: expected %d arguments, got %d" func.name
          (List.length func.params) (List.length args)));
  fr

(** The modelled architectural register file holds the 16 most recently
    written values: a bit flip in ARMv7's 16 architectural registers hits
    recently produced (mostly live) values, not arbitrary stale SSA
    temporaries.  The ring may contain a register more than once; that
    biases faults toward frequently rewritten registers, as a rotating
    physical file would. *)
let arch_registers = 16

(** Flip a random bit of a random recently-written register of the active
    frame — the paper's register-file single-event upset. *)
let inject_fault st (plan : fault_plan) =
  match plan.kind with
  | Branch_target -> st.branch_fault_armed <- Some plan.fault_rng
  | Register_bit ->
    (match st.stack with
     | [] -> ()
     | fr :: _ ->
       if fr.recent_n > 0 then begin
         let nth = Rng.int plan.fault_rng fr.recent_n in
         let reg = fr.recent.(nth) in
         let bit = Rng.int plan.fault_rng 64 in
         let before = fr.values.(reg) in
         let after = Value.flip_bit before bit in
         fr.values.(reg) <- after;
         st.injection <-
           Some { inj_step = st.steps; inj_kind = Register_bit; inj_reg = reg;
                  inj_bit = bit; before; after }
       end)

let tick st ~cycles =
  st.steps <- st.steps + 1;
  st.cycles <- st.cycles + cycles;
  (match st.fault_pending with
   | Some plan when st.steps >= plan.at_step ->
     st.fault_pending <- None;
     inject_fault st plan
   | Some _ | None -> ())
  [@@inline]

(** Evaluate the phi batch of a block on entry from [prev_label]:
    parallel-copy semantics (all reads before any write). *)
let run_phis st (fr : frame) =
  match fr.block.phis with
  | [] -> ()
  | phis ->
    (* A phi without an edge from the (possibly fault-corrupted) previous
       block keeps its stale value: the parallel copies that real codegen
       places in the predecessor never executed.  Fault-free runs always
       have the edge. *)
    let vals =
      List.map
        (fun (phi : Instr.phi) ->
          match List.assoc_opt fr.prev_label phi.incoming with
          | Some op -> Some (read st fr op)
          | None -> None)
        phis
    in
    List.iter2
      (fun (phi : Instr.phi) v ->
        match v with
        | Some v -> write fr phi.phi_dest v
        | None -> ())
      phis vals;
    List.iter (fun (_ : Instr.phi) -> tick st ~cycles:Cost.phi) phis

let goto st (fr : frame) label =
  let label =
    match st.branch_fault_armed with
    | None -> label
    | Some rng ->
      st.branch_fault_armed <- None;
      let blocks = Array.of_list fr.func.blocks in
      let target = blocks.(Rng.int rng (Array.length blocks)) in
      st.injection <-
        Some { inj_step = st.steps; inj_kind = Branch_target; inj_reg = -1;
               inj_bit = -1; before = Value.zero; after = Value.zero };
      target.Block.label
  in
  fr.prev_label <- fr.block.label;
  fr.block <- Func.find_block fr.func label;
  fr.idx <- 0;
  run_phis st fr

(* Cycle accounting with the slack-credit model (see Cost): source
   instructions accrue spare-slot credit, duplicated shadow instructions
   consume it or pay one issue slot, checks always pay. *)
let instr_cycles st (ins : Instr.t) =
  match ins.origin with
  | Instr.From_source ->
    st.slack_credit <- min (st.slack_credit + Cost.slack_gain) Cost.slack_cap;
    Cost.instr ins
  | Instr.Duplicated _ ->
    if st.slack_credit >= Cost.slack_cost then begin
      st.slack_credit <- st.slack_credit - Cost.slack_cost;
      0
    end
    else Cost.shadow_slot
  | Instr.Check_insertion -> Cost.instr ins

let exec_instr st (fr : frame) (ins : Instr.t) =
  let rd op = read st fr op in
  tick st ~cycles:(instr_cycles st ins);
  match ins.kind with
  | Binop (op, a, b) ->
    let v =
      try Opcode.eval_binop op (rd a) (rd b) with
      | Opcode.Division_by_zero -> raise (Stop_trap Division_by_zero)
      | Value.Kind_error m -> raise (Stop_trap (Kind_confusion m))
    in
    (match ins.dest with Some r -> write fr r v | None -> ());
    (match st.config.on_def with Some f -> f ins.uid v | None -> ())
  | Unop (op, a) ->
    let v =
      try Opcode.eval_unop op (rd a)
      with Value.Kind_error m -> raise (Stop_trap (Kind_confusion m))
    in
    (match ins.dest with Some r -> write fr r v | None -> ());
    (match st.config.on_def with Some f -> f ins.uid v | None -> ())
  | Icmp (op, a, b) ->
    let v =
      try Opcode.eval_icmp op (rd a) (rd b)
      with Value.Kind_error m -> raise (Stop_trap (Kind_confusion m))
    in
    (match ins.dest with Some r -> write fr r v | None -> ())
  | Fcmp (op, a, b) ->
    let v =
      try Opcode.eval_fcmp op (rd a) (rd b)
      with Value.Kind_error m -> raise (Stop_trap (Kind_confusion m))
    in
    (match ins.dest with Some r -> write fr r v | None -> ())
  | Select (c, a, b) ->
    let v = if Value.truthy (rd c) then rd a else rd b in
    (match ins.dest with Some r -> write fr r v | None -> ());
    (match st.config.on_def with Some f -> f ins.uid v | None -> ())
  | Const v -> (match ins.dest with Some r -> write fr r v | None -> ())
  | Load a ->
    let addr =
      try Memory.addr_of_value (rd a)
      with Memory.Segfault x -> raise (Stop_trap (Segfault x))
    in
    let v =
      try Memory.load st.mem addr
      with Memory.Segfault x -> raise (Stop_trap (Segfault x))
    in
    (match ins.dest with Some r -> write fr r v | None -> ());
    (match st.config.on_def with Some f -> f ins.uid v | None -> ())
  | Store (a, v) ->
    let addr =
      try Memory.addr_of_value (rd a)
      with Memory.Segfault x -> raise (Stop_trap (Segfault x))
    in
    (try Memory.store st.mem addr (rd v)
     with Memory.Segfault x -> raise (Stop_trap (Segfault x)))
  | Alloc n ->
    let size =
      try Value.to_int (rd n)
      with Value.Kind_error m -> raise (Stop_trap (Kind_confusion m))
    in
    if size < 0 || size > 1 lsl 28 then
      raise (Stop_trap (Segfault size));
    let base = Memory.alloc st.mem size in
    (match ins.dest with Some r -> write fr r (Value.of_int base) | None -> ())
  | Call (name, args) ->
    let callee =
      try Prog.find_func st.prog name
      with Invalid_argument _ -> raise (Stop_trap (Unknown_function name))
    in
    let arg_values = List.map rd args in
    let callee_frame =
      new_frame st callee ~args:arg_values ~ret_dest:ins.dest
    in
    st.stack <- callee_frame :: st.stack
  | Dup_check (a, b) ->
    if not (Value.equal (rd a) (rd b)) then
      raise (Stop_detected { check_uid = ins.uid; dup_check = true })
  | Value_check (ck, a) ->
    if not (Instr.check_passes ck (rd a)) then begin
      match st.config.mode with
      | Detect ->
        if Hashtbl.mem st.config.disabled_checks ins.uid then begin
          st.valchk_failures <- st.valchk_failures + 1;
          Hashtbl.replace st.failed_uids ins.uid ()
        end
        else raise (Stop_detected { check_uid = ins.uid; dup_check = false })
      | Record ->
        st.valchk_failures <- st.valchk_failures + 1;
        Hashtbl.replace st.failed_uids ins.uid ()
    end

(** Execute the terminator; returns [Some v] when the whole program returns. *)
let exec_terminator st (fr : frame) =
  match fr.block.term with
  | Instr.Jmp l ->
    tick st ~cycles:Cost.jmp;
    goto st fr l;
    None
  | Instr.Br (c, l1, l2) ->
    tick st ~cycles:Cost.br;
    let cond = Value.truthy (read st fr c) in
    goto st fr (if cond then l1 else l2);
    None
  | Instr.Ret op ->
    tick st ~cycles:Cost.ret;
    let v = Option.map (read st fr) op in
    (match st.stack with
     | [] -> assert false
     | _self :: rest ->
       st.stack <- rest;
       (match rest with
        | [] -> Some v         (* program finished *)
        | caller :: _ ->
          (match fr.ret_dest, v with
           | Some r, Some value -> write caller r value
           | Some r, None -> write caller r Value.zero
           | None, _ -> ());
          None))

let run ?(config = default_config) prog ~entry ~args ~mem =
  let st =
    { prog; mem; config; stack = []; steps = 0; cycles = 0;
      valchk_failures = 0; failed_uids = Hashtbl.create 4; injection = None;
      fault_pending = config.fault; branch_fault_armed = None;
      slack_credit = 0 }
  in
  let finish stop =
    { stop; steps = st.steps; cycles = st.cycles;
      valchk_failures = st.valchk_failures;
      failed_check_uids =
        Hashtbl.fold (fun uid () acc -> uid :: acc) st.failed_uids []
        |> List.sort compare;
      injection = st.injection }
  in
  match
    let entry_func = Prog.find_func prog entry in
    let fr = new_frame st entry_func ~args ~ret_dest:None in
    st.stack <- [ fr ];
    let result = ref None in
    while !result = None do
      if st.steps >= config.fuel then result := Some Out_of_fuel
      else begin
        match st.stack with
        | [] -> assert false
        | fr :: _ ->
          if fr.idx < Array.length fr.block.body then begin
            let ins = fr.block.body.(fr.idx) in
            fr.idx <- fr.idx + 1;
            exec_instr st fr ins
          end
          else begin
            match exec_terminator st fr with
            | Some v -> result := Some (Finished v)
            | None -> ()
          end
      end
    done;
    (match !result with Some s -> s | None -> assert false)
  with
  | stop -> finish stop
  | exception Stop_detected d -> finish (Sw_detected d)
  | exception Stop_trap t -> finish (Trapped t)

let pp_trap ppf = function
  | Segfault a -> Format.fprintf ppf "segfault @%d" a
  | Division_by_zero -> Format.fprintf ppf "division by zero"
  | Kind_confusion m -> Format.fprintf ppf "kind confusion: %s" m
  | Undefined_register r -> Format.fprintf ppf "undefined register %%r%d" r
  | Unknown_function f -> Format.fprintf ppf "unknown function %s" f

let pp_stop ppf = function
  | Finished None -> Format.fprintf ppf "finished"
  | Finished (Some v) -> Format.fprintf ppf "finished with %a" Value.pp v
  | Trapped t -> Format.fprintf ppf "trap: %a" pp_trap t
  | Sw_detected d ->
    Format.fprintf ppf "software detection at check #%d (%s)" d.check_uid
      (if d.dup_check then "dup" else "value")
  | Out_of_fuel -> Format.fprintf ppf "out of fuel"
