lib/interp/machine.ml: Array Block Cost Format Func Hashtbl Instr Ir List Memory Opcode Option Printf Prog Rng Value
