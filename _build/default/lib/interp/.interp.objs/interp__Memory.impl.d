lib/interp/memory.ml: Array Float Int64 Ir Value
