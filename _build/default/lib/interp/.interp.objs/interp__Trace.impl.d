lib/interp/trace.ml: Format Func Hashtbl Instr Ir List Machine Printer Printf Prog String Value
