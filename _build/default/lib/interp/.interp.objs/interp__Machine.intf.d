lib/interp/machine.mli: Format Hashtbl Ir Memory Rng
