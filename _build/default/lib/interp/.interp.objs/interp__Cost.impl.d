lib/interp/cost.ml: Instr Ir Opcode
