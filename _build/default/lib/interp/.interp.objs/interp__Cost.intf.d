lib/interp/cost.mli: Ir
