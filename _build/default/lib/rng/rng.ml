(** Deterministic splittable pseudo-random number generator.

    All randomness in the repository (synthetic workload inputs, statistical
    fault injection, property-test data) flows through this module so that
    every experiment is exactly reproducible from a seed.  The core is a
    SplitMix64 stream, which has good statistical quality for simulation
    purposes and a trivial, allocation-free implementation. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let of_int64 seed = { state = seed }

(* SplitMix64 output function (Steele, Lea, Flood 2014). *)
let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** [split t] returns an independent generator; [t] advances. *)
let split t =
  let s = next_int64 t in
  { state = Int64.mul s 0xDA942042E4DD58B5L }

let bits t = next_int64 t

(** [int t n] is uniform in [0, n). Requires [n > 0]. *)
let int t n =
  assert (n > 0);
  (* Keep 62 bits so the value fits OCaml's native int without wrapping. *)
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  v mod n

(** Uniform float in [0, 1). *)
let float t =
  let v = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float v /. 9007199254740992.0

(** Uniform float in [lo, hi). *)
let float_range t lo hi = lo +. ((hi -. lo) *. float t)

let bool t = Int64.logand (next_int64 t) 1L = 1L

(** Standard normal via Box-Muller. *)
let gaussian t =
  let u1 = max 1e-12 (float t) in
  let u2 = float t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

(** Pick a uniformly random element of a non-empty array. *)
let choose t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

(** Fisher-Yates shuffle, in place. *)
let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
