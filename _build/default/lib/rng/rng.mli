(** Deterministic splittable pseudo-random number generator (SplitMix64).

    All randomness in the repository — synthetic workload inputs,
    statistical fault injection, property-test data — flows through this
    module so every experiment is exactly reproducible from a seed. *)

type t

(** [create seed] makes a fresh generator. *)
val create : int -> t

val of_int64 : int64 -> t

(** Raw 64-bit output; advances the state. *)
val bits : t -> int64

val next_int64 : t -> int64

(** [split t] returns a generator statistically independent of the future
    outputs of [t]; [t] advances. *)
val split : t -> t

(** [int t n] is uniform in [0, n). Requires [n > 0]. *)
val int : t -> int -> int

(** Uniform in [0, 1). *)
val float : t -> float

(** Uniform in [lo, hi). *)
val float_range : t -> float -> float -> float

val bool : t -> bool

(** Standard normal deviate (Box-Muller). *)
val gaussian : t -> float

(** Uniform element of a non-empty array. *)
val choose : t -> 'a array -> 'a

(** In-place Fisher-Yates shuffle. *)
val shuffle : t -> 'a array -> unit
