lib/transform/dce.ml: Array Constant_fold Cse Func Hashtbl Instr Ir List Prog Verifier
