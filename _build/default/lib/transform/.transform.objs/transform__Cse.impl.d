lib/transform/cse.ml: Analysis Array Func Hashtbl Instr Ir List Opcode Option Printer Printf Prog Value
