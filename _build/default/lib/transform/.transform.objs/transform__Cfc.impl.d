lib/transform/cfc.ml: Analysis Array Func Hashtbl Instr Ir List Prog Value
