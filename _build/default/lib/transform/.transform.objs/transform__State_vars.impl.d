lib/transform/state_vars.ml: Analysis Block Func Instr Ir List Prog
