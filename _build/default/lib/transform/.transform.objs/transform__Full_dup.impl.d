lib/transform/full_dup.ml: Array Block Func Hashtbl Instr Ir List Prog
