lib/transform/pipeline.ml: Cfc Duplicate Full_dup Hashtbl Ir Prog State_vars Value_checks Verifier
