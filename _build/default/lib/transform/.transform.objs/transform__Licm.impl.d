lib/transform/licm.ml: Analysis Array Block Func Hashtbl Instr Ir List Opcode Prog Verifier
