lib/transform/constant_fold.ml: Array Func Hashtbl Instr Int64 Ir List Opcode Option Prog Value
