lib/transform/duplicate.ml: Analysis Block Func Hashtbl Instr Ir List Prog State_vars
