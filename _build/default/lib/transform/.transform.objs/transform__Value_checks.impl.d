lib/transform/value_checks.ml: Analysis Array Block Func Hashtbl Instr Ir List Prog
