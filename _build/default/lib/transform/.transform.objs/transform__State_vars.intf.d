lib/transform/state_vars.mli: Analysis Ir
