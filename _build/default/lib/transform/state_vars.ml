open Ir

(** State-variable identification (paper §III-B, §IV-A).

    In SSA form a variable that carries state across loop iterations is
    exactly a phi node in a loop header: one incoming definition from outside
    the loop and one from the loop's own update.  Loop index variables are a
    special case.  A corruption of such a variable snowballs into later
    iterations, so these are the paper's critical variables. *)

type state_var = {
  func : Func.t;
  loop : Analysis.Loops.loop;
  header : Block.t;
  phi : Instr.phi;
  (** operands flowing in from back edges, with their latch labels *)
  back_edges : (string * Instr.operand) list;
}

(** State variables of one function. *)
let of_func (f : Func.t) =
  let cfg = Analysis.Cfg.of_func f in
  let loops = Analysis.Loops.compute cfg in
  List.map
    (fun ((loop : Analysis.Loops.loop), header, phi) ->
      let latch_labels =
        List.map (fun l -> Analysis.Cfg.label cfg l) loop.latches
      in
      let back_edges =
        List.filter
          (fun (lbl, _) -> List.mem lbl latch_labels)
          phi.Instr.incoming
      in
      { func = f; loop; header; phi; back_edges })
    (Analysis.Loops.header_phis loops)

(** State variables of every function in the program. *)
let of_prog (p : Prog.t) =
  List.concat_map of_func p.funcs

let count_prog p = List.length (of_prog p)
