(** State-variable identification (paper §III-B, §IV-A).

    In SSA form a variable that carries state across loop iterations is
    exactly a phi node in a loop header: one incoming definition from
    outside the loop and one from the loop's own update.  Loop index
    variables are a special case.  A corruption of such a variable
    snowballs into later iterations, so these are the paper's critical
    variables. *)

type state_var = {
  func : Ir.Func.t;
  loop : Analysis.Loops.loop;
  header : Ir.Block.t;
  phi : Ir.Instr.phi;
  back_edges : (string * Ir.Instr.operand) list;
      (** operands flowing in from back edges, with their latch labels *)
}

(** State variables of one function. *)
val of_func : Ir.Func.t -> state_var list

(** State variables of every function in the program. *)
val of_prog : Ir.Prog.t -> state_var list

val count_prog : Ir.Prog.t -> int
