open Ir

(** Signature-based control-flow checking.

    The paper's scheme does not protect against faults that corrupt branch
    *targets*; §IV-C points to a signature-based low-cost solution that can
    be used in conjunction.  This pass implements that complementary
    technique, in the assertion style of CFCSS-family schemes:

    - every block is assigned a compile-time signature (its dense index),
    - a per-function signature cell is allocated at entry,
    - each block entry loads the cell, checks that it holds the signature
      of a *legal predecessor* (an expected-value check: Single for one
      predecessor, Double for two, Range for fan-in regions), and stores
      its own signature.

    A wild jump lands in a block whose predecessor check cannot match the
    stale signature and is caught as an SWDetect.  All inserted
    instructions carry the [Check_insertion] origin, so the cost model
    charges them like the other checks. *)

type stats = {
  mutable protected_blocks : int;
  mutable signature_checks : int;
}

let sig_value n = Value.of_int (1000 + n)

let check_kind_of_preds pred_sigs =
  match List.sort_uniq compare pred_sigs with
  | [] -> None
  | [ s ] -> Some (Instr.Single (sig_value s))
  | [ s1; s2 ] -> Some (Instr.Double (sig_value s1, sig_value s2))
  | many ->
    let lo = List.hd many and hi = List.nth many (List.length many - 1) in
    Some (Instr.Range (sig_value lo, sig_value hi))

let run_func prog (f : Func.t) ~stats =
  let cfg = Analysis.Cfg.of_func f in
  let preds = Func.predecessors f in
  (* The signature cell: one word allocated at function entry. *)
  let cell = Prog.fresh_reg prog in
  let mk ?dest kind =
    { Instr.uid = Prog.fresh_uid prog; dest; kind;
      origin = Instr.Check_insertion }
  in
  let cell_alloc = mk ~dest:cell (Instr.Alloc (Instr.Imm (Value.of_int 1))) in
  let entry_sig = Analysis.Cfg.index cfg f.entry in
  let entry_store =
    mk (Instr.Store (Instr.Reg cell, Instr.Imm (sig_value entry_sig)))
  in
  Func.iter_blocks
    (fun b ->
      if b.label = f.entry then begin
        b.body <- Array.append [| cell_alloc; entry_store |] b.body;
        stats.protected_blocks <- stats.protected_blocks + 1
      end
      else begin
        let pred_sigs =
          List.map
            (fun lbl -> Analysis.Cfg.index cfg lbl)
            (try Hashtbl.find preds b.label with Not_found -> [])
        in
        let loaded = Prog.fresh_reg prog in
        let load = mk ~dest:loaded (Instr.Load (Instr.Reg cell)) in
        let store =
          mk
            (Instr.Store
               (Instr.Reg cell,
                Instr.Imm (sig_value (Analysis.Cfg.index cfg b.label))))
        in
        let prefix =
          match check_kind_of_preds pred_sigs with
          | None -> [| load; store |]
          | Some ck ->
            stats.signature_checks <- stats.signature_checks + 1;
            [| load; mk (Instr.Value_check (ck, Instr.Reg loaded)); store |]
        in
        b.body <- Array.append prefix b.body;
        stats.protected_blocks <- stats.protected_blocks + 1
      end)
    f

(** Instrument every function with signature checks. *)
let run (prog : Prog.t) =
  let stats = { protected_blocks = 0; signature_checks = 0 } in
  List.iter (fun f -> run_func prog f ~stats) prog.funcs;
  stats
