open Ir

(** Common-subexpression elimination, dominance-scoped.

    Two side-effect-free instructions with the same opcode and operands
    compute the same value; the later one is rewritten into a copy of the
    earlier when the earlier's block dominates it.  Loads are *not* merged
    (an intervening store may have changed memory), matching the
    conservative behaviour the protection passes assume.

    Like {!Constant_fold}, this runs as frontend cleanup before protection;
    it never touches protection-inserted instructions. *)

type stats = { mutable merged : int }

(* Structural key of a pure computation.  Operands are resolved through the
   replacement map first so chains of equal expressions collapse. *)
let key_of (kind : Instr.kind) =
  match kind with
  | Binop (op, a, b) -> Some (Printf.sprintf "b:%s:%s:%s" (Opcode.binop_name op)
                                (Printer.operand_key a) (Printer.operand_key b))
  | Unop (op, a) -> Some (Printf.sprintf "u:%s:%s" (Opcode.unop_name op)
                            (Printer.operand_key a))
  | Icmp (op, a, b) -> Some (Printf.sprintf "i:%s:%s:%s" (Opcode.icmp_name op)
                               (Printer.operand_key a) (Printer.operand_key b))
  | Fcmp (op, a, b) -> Some (Printf.sprintf "f:%s:%s:%s" (Opcode.fcmp_name op)
                               (Printer.operand_key a) (Printer.operand_key b))
  | Select (c, a, b) ->
    Some (Printf.sprintf "s:%s:%s:%s" (Printer.operand_key c)
            (Printer.operand_key a) (Printer.operand_key b))
  | Const v -> Some (Printf.sprintf "c:%s" (Value.to_string v))
  | Load _ | Store _ | Alloc _ | Call _ | Dup_check _ | Value_check _ -> None

let run_func (f : Func.t) ~stats =
  let cfg = Analysis.Cfg.of_func f in
  let dom = Analysis.Dom.compute cfg in
  (* available: expression key -> (defining block index, register). *)
  let available : (string, int * Instr.reg) Hashtbl.t = Hashtbl.create 64 in
  let replaced : (Instr.reg, Instr.reg) Hashtbl.t = Hashtbl.create 32 in
  let rec resolve_reg r =
    match Hashtbl.find_opt replaced r with
    | Some r' -> resolve_reg r'
    | None -> r
  in
  let resolve op =
    match op with
    | Instr.Reg r -> Instr.Reg (resolve_reg r)
    | Instr.Imm _ -> op
  in
  (* Dominance (reverse-postorder) walk: a dominator is always visited
     before the blocks it dominates. *)
  let rpo = Analysis.Cfg.reverse_postorder cfg in
  Array.iter
    (fun node ->
      let b = Analysis.Cfg.block cfg node in
      List.iter
        (fun (phi : Instr.phi) ->
          phi.incoming <-
            List.map (fun (lbl, op) -> (lbl, resolve op)) phi.incoming)
        b.phis;
      b.body <-
        Array.map
          (fun (ins : Instr.t) ->
            let ins = Instr.map_operands resolve ins in
            if ins.origin <> Instr.From_source then ins
            else begin
              match ins.dest, key_of ins.kind with
              | Some dest, Some key ->
                (match Hashtbl.find_opt available key with
                 | Some (def_node, reg) when Analysis.Dom.dominates dom def_node node ->
                   stats.merged <- stats.merged + 1;
                   Hashtbl.replace replaced dest reg;
                   (* Keep a cheap copy so SSA stays well-formed; DCE drops
                      it once all uses are rewritten. *)
                   { ins with
                     kind =
                       Instr.Binop
                         (Opcode.Add, Instr.Reg reg, Instr.Imm Value.zero) }
                 | Some _ | None ->
                   Hashtbl.replace available key (node, dest);
                   ins)
              | _, _ -> ins
            end)
          b.body;
      match b.term with
      | Instr.Ret op -> b.term <- Instr.Ret (Option.map resolve op)
      | Instr.Br (c, t, e) -> b.term <- Instr.Br (resolve c, t, e)
      | Instr.Jmp _ -> ())
    rpo

(** Merge common subexpressions across the program; run {!Dce} afterwards
    to drop the left-over copies. *)
let run (prog : Prog.t) =
  let stats = { merged = 0 } in
  List.iter (fun f -> run_func f ~stats) prog.funcs;
  stats
