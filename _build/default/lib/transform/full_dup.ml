open Ir

(** Full-duplication baseline (SWIFT-style, paper §V and [9]): every
    arithmetic instruction and phi is cloned into a shadow computation;
    loads, stores, calls and allocations are not duplicated.  Shadow values
    are compared against the originals at the program's observable points:
    store operands, conditional-branch operands and return values.

    This is the "maximum amount of duplication possible without duplicating
    loads/stores" against which the paper's 57 % overhead is measured. *)

type stats = {
  mutable cloned_instrs : int;
  mutable cloned_phis : int;
  mutable dup_checks : int;
}

let clonable (ins : Instr.t) =
  match ins.kind with
  | Binop _ | Unop _ | Icmp _ | Fcmp _ | Select _ | Const _ -> true
  | Load _ | Store _ | Alloc _ | Call _ | Dup_check _ | Value_check _ -> false

let run_func prog (func : Func.t) ~stats =
  let shadow : (Instr.reg, Instr.operand) Hashtbl.t = Hashtbl.create 128 in
  let shadow_op (op : Instr.operand) =
    match op with
    | Imm v -> Instr.Imm v
    | Reg r ->
      (match Hashtbl.find_opt shadow r with
       | Some s -> s
       | None -> Instr.Reg r)
  in
  (* Pass 1: pre-register clone registers for every clonable def and every
     phi, so that forward references through back edges resolve. *)
  let phi_clones = ref [] in
  Func.iter_blocks
    (fun b ->
      List.iter
        (fun (phi : Instr.phi) ->
          if phi.phi_origin = Instr.From_source then begin
            let dest = Prog.fresh_reg prog in
            Hashtbl.replace shadow phi.phi_dest (Instr.Reg dest);
            phi_clones := (b, phi, dest) :: !phi_clones
          end)
        b.phis;
      Array.iter
        (fun (ins : Instr.t) ->
          if clonable ins then
            match ins.dest with
            | Some r -> Hashtbl.replace shadow r (Instr.Reg (Prog.fresh_reg prog))
            | None -> ())
        b.body)
    func;
  (* Pass 2: materialize phi clones. *)
  List.iter
    (fun (b, (phi : Instr.phi), dest) ->
      let clone =
        { Instr.phi_uid = Prog.fresh_uid prog; phi_dest = dest;
          incoming = List.map (fun (lbl, op) -> (lbl, shadow_op op)) phi.incoming;
          phi_origin = Instr.Duplicated phi.phi_uid }
      in
      b.Block.phis <- b.Block.phis @ [ clone ];
      stats.cloned_phis <- stats.cloned_phis + 1)
    (List.rev !phi_clones);
  (* Pass 3: materialize instruction clones and insert checks. *)
  let mk_check a =
    match a, shadow_op a with
    | Instr.Reg _, s when s <> a ->
      Some
        { Instr.uid = Prog.fresh_uid prog; dest = None;
          kind = Instr.Dup_check (a, s); origin = Instr.Check_insertion }
    | (Instr.Reg _ | Instr.Imm _), _ -> None
  in
  Func.iter_blocks
    (fun b ->
      (* Work over a snapshot: we mutate the block as we go. *)
      let snapshot = Array.copy b.body in
      Array.iter
        (fun (ins : Instr.t) ->
          if clonable ins then begin
            match ins.dest with
            | None -> ()
            | Some r ->
              let dest =
                match Hashtbl.find shadow r with
                | Instr.Reg d -> d
                | Instr.Imm _ -> assert false
              in
              let shadowed = Instr.map_operands shadow_op ins in
              let clone =
                { shadowed with
                  uid = Prog.fresh_uid prog; dest = Some dest;
                  origin = Instr.Duplicated ins.uid }
              in
              Block.insert_after b ~after_uid:ins.uid [ clone ];
              stats.cloned_instrs <- stats.cloned_instrs + 1
          end
          else begin
            (* Synchronisation points: compare shadows before the original
               value escapes to memory. *)
            match ins.kind with
            | Instr.Store (addr, v) ->
              let checks = List.filter_map mk_check [ addr; v ] in
              if checks <> [] then begin
                Block.insert_before b ~before_uid:ins.uid checks;
                stats.dup_checks <- stats.dup_checks + List.length checks
              end
            | Instr.Call (_, args) ->
              let checks = List.filter_map mk_check args in
              if checks <> [] then begin
                Block.insert_before b ~before_uid:ins.uid checks;
                stats.dup_checks <- stats.dup_checks + List.length checks
              end
            | Instr.Binop _ | Instr.Unop _ | Instr.Icmp _ | Instr.Fcmp _
            | Instr.Select _ | Instr.Const _ | Instr.Load _ | Instr.Alloc _
            | Instr.Dup_check _ | Instr.Value_check _ -> ()
          end)
        snapshot;
      (* Checks guarding control flow and returns. *)
      let term_checks =
        match b.term with
        | Instr.Br (c, _, _) -> List.filter_map mk_check [ c ]
        | Instr.Ret (Some v) -> List.filter_map mk_check [ v ]
        | Instr.Ret None | Instr.Jmp _ -> []
      in
      if term_checks <> [] then begin
        Block.append b term_checks;
        stats.dup_checks <- stats.dup_checks + List.length term_checks
      end)
    func

(** Apply full duplication to every function. *)
let run (prog : Prog.t) =
  let stats = { cloned_instrs = 0; cloned_phis = 0; dup_checks = 0 } in
  List.iter (fun func -> run_func prog func ~stats) prog.funcs;
  stats
