open Ir

(** Loop-invariant code motion.

    Pure computations whose operands are all defined outside a loop are
    hoisted to the loop's single entry block.  This completes the frontend
    cleanup suite (fold, CSE, DCE) and interacts with protection in an
    interesting way: a hoisted invariant executes once, so any value check
    later placed on it costs one dynamic check instead of one per
    iteration.

    Safety rules:
    - only side-effect-free, non-trapping instructions move (no loads —
      an intervening store may change memory; no sdiv/srem — hoisting
      could introduce a division trap on a path that never executed it);
    - the loop must have a unique entry block outside the body
      (builder-generated loops always do);
    - operands must be defined outside the loop or by instructions already
      hoisted from it (fixpoint). *)

type stats = { mutable hoisted : int }

let hoistable (ins : Instr.t) =
  match ins.kind with
  | Binop ((Opcode.Sdiv | Opcode.Srem), _, _) -> false
  | Binop _ | Unop _ | Icmp _ | Fcmp _ | Select _ | Const _ -> true
  | Load _ | Store _ | Alloc _ | Call _ | Dup_check _ | Value_check _ -> false

let run_func (f : Func.t) ~stats =
  let cfg = Analysis.Cfg.of_func f in
  let loops = Analysis.Loops.compute cfg in
  let usedef = Analysis.Usedef.compute f in
  (* Innermost loops first so invariants bubble outward across passes. *)
  let by_depth =
    List.sort
      (fun (a : Analysis.Loops.loop) b -> compare b.depth a.depth)
      loops.loops
  in
  List.iter
    (fun (l : Analysis.Loops.loop) ->
      let in_body node = List.mem node l.body in
      (* Unique entry: the header predecessor outside the body. *)
      let entries =
        List.filter (fun p -> not (in_body p)) cfg.pred.(l.header)
      in
      match entries with
      | [ entry ] ->
        let entry_block = Analysis.Cfg.block cfg entry in
        let body_labels =
          List.map (fun n -> (Analysis.Cfg.label cfg n)) l.body
        in
        let hoisted : (Instr.reg, unit) Hashtbl.t = Hashtbl.create 8 in
        let defined_outside r =
          Hashtbl.mem hoisted r
          ||
          (match Analysis.Usedef.def_of usedef r with
           | None | Some Analysis.Usedef.Param -> true
           | Some (Analysis.Usedef.Phi_def (b, _))
           | Some (Analysis.Usedef.Instr_def (b, _)) ->
             not (List.mem b.Block.label body_labels))
        in
        let changed = ref true in
        while !changed do
          changed := false;
          List.iter
            (fun node ->
              let b = Analysis.Cfg.block cfg node in
              let keep, move =
                List.partition
                  (fun (ins : Instr.t) ->
                    not
                      (hoistable ins
                       && ins.origin = Instr.From_source
                       && List.for_all defined_outside (Instr.uses ins)))
                  (Array.to_list b.body)
              in
              if move <> [] then begin
                List.iter
                  (fun (ins : Instr.t) ->
                    match ins.dest with
                    | Some r -> Hashtbl.replace hoisted r ()
                    | None -> ())
                  move;
                Block.append entry_block move;
                b.body <- Array.of_list keep;
                stats.hoisted <- stats.hoisted + List.length move;
                changed := true
              end)
            l.body
        done
      | [] | _ :: _ :: _ -> ())
    by_depth

(** Hoist loop invariants across the program. *)
let run (prog : Prog.t) =
  let stats = { hoisted = 0 } in
  List.iter (fun f -> run_func f ~stats) prog.funcs;
  Verifier.verify prog;
  stats
