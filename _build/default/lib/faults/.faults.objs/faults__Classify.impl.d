lib/faults/classify.ml: Float Interp Ir
