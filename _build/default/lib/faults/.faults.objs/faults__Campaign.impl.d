lib/faults/campaign.ml: Classify Fidelity Format Hashtbl Int64 Interp Ir Lazy List Rng
