lib/faults/campaign.mli: Classify Fidelity Hashtbl Interp Ir
