lib/faults/classify.mli: Interp
