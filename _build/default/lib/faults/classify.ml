(** Outcome classification of a fault-injection trial (paper §IV-C).

    The five paper categories are Masked, HWDetect, SWDetect, Failure and
    USDC; we additionally keep the ASDC/USDC split of Figure 13 (SDCs whose
    output is still of acceptable quality) and the large/small-disturbance
    split of USDCs from Figure 2. *)

type outcome =
  | Masked            (** bit-identical output *)
  | Asdc              (** numerically different but acceptable output *)
  | Usdc_large        (** unacceptable; flip caused a large value change *)
  | Usdc_small        (** unacceptable; flip caused a small value change *)
  | Sw_detect         (** caught by an inserted software check *)
  | Hw_detect         (** trap (symptom) within the detection window *)
  | Failure           (** late trap, or infinite loop (fuel exhausted) *)

let all =
  [ Masked; Asdc; Usdc_large; Usdc_small; Sw_detect; Hw_detect; Failure ]

let name = function
  | Masked -> "Masked"
  | Asdc -> "ASDC"
  | Usdc_large -> "USDC(large)"
  | Usdc_small -> "USDC(small)"
  | Sw_detect -> "SWDetect"
  | Hw_detect -> "HWDetect"
  | Failure -> "Failure"

(** Paper defaults: a symptom within 1000 dynamic instructions of the flip
    counts as HWDetect (§IV-C). *)
let default_hw_window = 1000

(** Was the register disturbance "large"?  Integers: the flip moved the
    value by at least 2^16; floats: the value changed by more than 4x its
    own magnitude (or became non-finite). *)
let large_disturbance (inj : Interp.Machine.injection) =
  match inj.inj_kind with
  | Interp.Machine.Branch_target -> true
  | Interp.Machine.Register_bit ->
  let d = Ir.Value.disturbance ~before:inj.before ~after:inj.after in
  match inj.before with
  | Ir.Value.Int _ -> d >= 65536.0
  | Ir.Value.Float f ->
    (not (Float.is_finite d)) || d > 4.0 *. (Float.abs f +. 1e-9)

(** Classify one finished-or-stopped machine run.

    [acceptable] and [identical] judge the produced output against the
    fault-free golden output; they are only consulted when the program ran
    to completion. *)
let classify ~hw_window ~(result : Interp.Machine.result)
    ~identical ~acceptable =
  match result.stop with
  | Interp.Machine.Sw_detected _ -> Sw_detect
  | Interp.Machine.Out_of_fuel -> Failure
  | Interp.Machine.Trapped _ ->
    (match result.injection with
     | Some inj when result.steps - inj.inj_step <= hw_window -> Hw_detect
     | Some _ -> Failure
     | None -> Failure)
  | Interp.Machine.Finished _ ->
    if identical () then Masked
    else if acceptable () then Asdc
    else begin
      match result.injection with
      | Some inj when large_disturbance inj -> Usdc_large
      | Some _ -> Usdc_small
      | None -> Usdc_small
    end

(* Groupings used by the paper's different figures. *)

(** Figure 11 collapses ASDCs into Masked. *)
let fig11_bucket = function
  | Masked | Asdc -> "Masked"
  | Usdc_large | Usdc_small -> "USDC"
  | Sw_detect -> "SWDetect"
  | Hw_detect -> "HWDetect"
  | Failure -> "Failure"

let is_sdc = function
  | Asdc | Usdc_large | Usdc_small -> true
  | Masked | Sw_detect | Hw_detect | Failure -> false

let is_usdc = function
  | Usdc_large | Usdc_small -> true
  | Masked | Asdc | Sw_detect | Hw_detect | Failure -> false

(** Fault coverage as the paper defines it: Masked + SWDetect + HWDetect
    (the system continues or can trigger recovery). *)
let is_covered = function
  | Masked | Asdc | Sw_detect | Hw_detect -> true
  | Usdc_large | Usdc_small | Failure -> false
