lib/core/experiments.ml: Api Array Buffer Campaign Classify Faults Fidelity Interp List Printf Report Transform Workloads
