lib/core/softft.ml: Api Experiments Report
