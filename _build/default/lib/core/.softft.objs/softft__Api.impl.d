lib/core/api.ml: Faults Ir Printf Profiling Transform Workloads
