lib/core/api.mli: Faults Ir Profiling Transform Workloads
