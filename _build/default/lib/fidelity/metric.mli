(** Objective output-quality metrics (paper Table I, column 4).

    Each workload declares one metric and a threshold; a numerically
    incorrect output that still meets the threshold is an *acceptable*
    silent data corruption (ASDC), anything worse is unacceptable (USDC). *)

type kind =
  | Psnr                   (** peak signal-to-noise ratio, dB; higher better *)
  | Segmental_snr          (** frame-averaged SNR, dB; higher better *)
  | Mismatch_fraction      (** fraction of differing matrix cells; lower better *)
  | Classification_error   (** fraction of differing labels; lower better *)

type spec = {
  kind : kind;
  threshold : float;
  (** acceptance boundary: PSNR/segSNR must be >= threshold, mismatch and
      classification error must be <= threshold *)
  peak : float;
  (** signal peak used by PSNR (255 for 8-bit images, 32768 for PCM16) *)
}

(** Constructors with the paper's conventions. *)

val psnr_spec : ?peak:float -> float -> spec
val seg_snr_spec : float -> spec
val mismatch_spec : float -> spec
val class_error_spec : float -> spec

val kind_name : kind -> string
val spec_to_string : spec -> string

(** PSNR in dB against a reference signal; identical signals give
    [infinity].  Raises [Invalid_argument] on length mismatch. *)
val psnr : ?peak:float -> reference:float array -> float array -> float

(** Segmental SNR: mean of per-segment SNRs (dB) over segments of [seg]
    samples, each clamped into [0, clamp_db].  The clamp sits above the
    80 dB acceptance threshold so a localized corruption does not
    automatically fail the whole run. *)
val segmental_snr :
  ?seg:int -> ?clamp_db:float -> reference:float array -> float array -> float

(** Fraction of cells whose values differ (exact comparison). *)
val mismatch_fraction : reference:float array -> float array -> float

(** Alias of {!mismatch_fraction} with the machine-learning framing. *)
val classification_error : reference:float array -> float array -> float

(** Evaluate [spec]'s metric; the score is on the metric's natural scale. *)
val score : spec -> reference:float array -> float array -> float

(** Is the output of acceptable quality under [spec]? *)
val acceptable : spec -> reference:float array -> float array -> bool

(** Bitwise equality of the two signals (NaN-safe): pure masking. *)
val identical : reference:float array -> float array -> bool
