lib/fidelity/metric.ml: Array Float Int64 Printf
