lib/fidelity/metric.mli:
