(** Objective output-quality metrics (paper Table I, column 4).

    Each workload declares one metric and a threshold; a numerically
    incorrect output that still meets the threshold is an *acceptable* SDC
    (ASDC), anything worse is an *unacceptable* SDC (USDC). *)

type kind =
  | Psnr                   (** peak signal-to-noise ratio, dB; higher better *)
  | Segmental_snr          (** frame-averaged SNR, dB; higher better *)
  | Mismatch_fraction      (** fraction of differing matrix cells; lower better *)
  | Classification_error   (** fraction of differing labels; lower better *)

type spec = {
  kind : kind;
  threshold : float;
  (** acceptance boundary: PSNR/segSNR must be >= threshold, mismatch and
      classification error must be <= threshold *)
  peak : float;
  (** signal peak used by PSNR (255 for 8-bit images, 32768 for PCM16) *)
}

let psnr_spec ?(peak = 255.0) threshold = { kind = Psnr; threshold; peak }
let seg_snr_spec threshold = { kind = Segmental_snr; threshold; peak = 0.0 }
let mismatch_spec threshold = { kind = Mismatch_fraction; threshold; peak = 0.0 }
let class_error_spec threshold =
  { kind = Classification_error; threshold; peak = 0.0 }

let kind_name = function
  | Psnr -> "PSNR"
  | Segmental_snr -> "Segmental SNR"
  | Mismatch_fraction -> "Matrix mismatch"
  | Classification_error -> "Classification error"

let spec_to_string s =
  match s.kind with
  | Psnr | Segmental_snr -> Printf.sprintf "%s (%g dB)" (kind_name s.kind) s.threshold
  | Mismatch_fraction | Classification_error ->
    Printf.sprintf "%s (%g%%)" (kind_name s.kind) (s.threshold *. 100.)

let check_lengths name a b =
  if Array.length a <> Array.length b then
    invalid_arg
      (Printf.sprintf "%s: length mismatch (%d vs %d)" name (Array.length a)
         (Array.length b))

(** PSNR in dB against a reference signal with the given peak value.
    Identical signals give [infinity]. *)
let psnr ?(peak = 255.0) ~reference signal =
  check_lengths "psnr" reference signal;
  let n = Array.length reference in
  if n = 0 then infinity
  else begin
    let mse = ref 0.0 in
    for i = 0 to n - 1 do
      let d = reference.(i) -. signal.(i) in
      mse := !mse +. (d *. d)
    done;
    let mse = !mse /. float_of_int n in
    if mse <= 0.0 then infinity
    else 10.0 *. (log10 ((peak *. peak) /. mse))
  end

(** Segmental SNR: mean of per-segment SNRs (dB), segments of [seg] samples.
    Standard speech-quality metric; per-segment SNR is clamped to
    [0, clamp_db] before averaging, to keep silent or error-free segments
    from dominating.  The clamp sits above the 80 dB acceptance threshold
    so that a localized corruption does not automatically fail the run. *)
let segmental_snr ?(seg = 64) ?(clamp_db = 100.0) ~reference signal =
  check_lengths "segmental_snr" reference signal;
  let n = Array.length reference in
  if n = 0 then clamp_db
  else begin
    let n_segs = (n + seg - 1) / seg in
    let total = ref 0.0 in
    for s = 0 to n_segs - 1 do
      let lo = s * seg and hi = min n (s * seg + seg) in
      let sig_energy = ref 0.0 and err_energy = ref 0.0 in
      for i = lo to hi - 1 do
        sig_energy := !sig_energy +. (reference.(i) *. reference.(i));
        let d = reference.(i) -. signal.(i) in
        err_energy := !err_energy +. (d *. d)
      done;
      let snr_db =
        if !err_energy <= 0.0 then clamp_db
        else if !sig_energy <= 0.0 then 0.0
        else 10.0 *. log10 (!sig_energy /. !err_energy)
      in
      total := !total +. Float.max 0.0 (Float.min clamp_db snr_db)
    done;
    !total /. float_of_int n_segs
  end

(** Fraction of cells whose values differ (exact comparison). *)
let mismatch_fraction ~reference output =
  check_lengths "mismatch_fraction" reference output;
  let n = Array.length reference in
  if n = 0 then 0.0
  else begin
    let bad = ref 0 in
    for i = 0 to n - 1 do
      if reference.(i) <> output.(i) then incr bad
    done;
    float_of_int !bad /. float_of_int n
  end

(** Alias with the machine-learning framing: labels that changed. *)
let classification_error ~reference output = mismatch_fraction ~reference output

(** Evaluate a metric; returns the score on the metric's natural scale. *)
let score spec ~reference output =
  match spec.kind with
  | Psnr -> psnr ~peak:spec.peak ~reference output
  | Segmental_snr -> segmental_snr ~reference output
  | Mismatch_fraction -> mismatch_fraction ~reference output
  | Classification_error -> classification_error ~reference output

(** Is the output of acceptable quality under this metric? *)
let acceptable spec ~reference output =
  let s = score spec ~reference output in
  match spec.kind with
  | Psnr | Segmental_snr -> s >= spec.threshold
  | Mismatch_fraction | Classification_error -> s <= spec.threshold

(** Exactly equal outputs (pure masking, no corruption at all). *)
let identical ~reference output =
  Array.length reference = Array.length output
  && (let ok = ref true in
      Array.iteri
        (fun i v ->
          (* NaN-safe bit comparison *)
          if Int64.bits_of_float v <> Int64.bits_of_float reference.(i) then
            ok := false)
        output;
      !ok)
