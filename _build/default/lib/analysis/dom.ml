(** Dominator tree via the Cooper-Harvey-Kennedy iterative algorithm
    ("A Simple, Fast Dominance Algorithm"). *)

type t = {
  cfg : Cfg.t;
  idom : int array;       (** immediate dominator; entry maps to itself;
                              unreachable blocks map to -1 *)
  rpo_number : int array;
}

let compute (cfg : Cfg.t) =
  let n = Cfg.n_blocks cfg in
  let rpo = Cfg.reverse_postorder cfg in
  let rpo_number = Array.make n (-1) in
  Array.iteri (fun order node -> rpo_number.(node) <- order) rpo;
  let idom = Array.make n (-1) in
  idom.(cfg.entry) <- cfg.entry;
  let intersect a b =
    let a = ref a and b = ref b in
    while !a <> !b do
      while rpo_number.(!a) > rpo_number.(!b) do a := idom.(!a) done;
      while rpo_number.(!b) > rpo_number.(!a) do b := idom.(!b) done
    done;
    !a
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun node ->
        if node <> cfg.entry then begin
          let processed_preds =
            List.filter (fun p -> idom.(p) >= 0) cfg.pred.(node)
          in
          match processed_preds with
          | [] -> ()
          | first :: rest ->
            let new_idom = List.fold_left intersect first rest in
            if idom.(node) <> new_idom then begin
              idom.(node) <- new_idom;
              changed := true
            end
        end)
      rpo
  done;
  { cfg; idom; rpo_number }

(** [dominates t a b]: does block [a] dominate block [b]?  Reflexive. *)
let dominates t a b =
  if t.idom.(b) < 0 || t.idom.(a) < 0 then false
  else begin
    let rec up b = if b = a then true else if b = t.cfg.entry then false else up t.idom.(b) in
    up b
  end

let idom t node = if node = t.cfg.entry then None else
    (if t.idom.(node) < 0 then None else Some t.idom.(node))

(** Children lists of the dominator tree. *)
let children t =
  let n = Array.length t.idom in
  let kids = Array.make n [] in
  for node = 0 to n - 1 do
    if node <> t.cfg.entry && t.idom.(node) >= 0 then
      kids.(t.idom.(node)) <- node :: kids.(t.idom.(node))
  done;
  kids
