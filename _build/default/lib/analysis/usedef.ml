(** Use-def information for one function.

    The producer chain of a register — the recursive closure of its use-def
    edges — is what the duplication pass clones.  Chains terminate at loads,
    calls, allocs, parameters and constants (the paper stops at loads to
    avoid doubling memory traffic; a fault on a load address tends to produce
    a detectable symptom instead). *)

type def_site =
  | Param
  | Phi_def of Ir.Block.t * Ir.Instr.phi
  | Instr_def of Ir.Block.t * Ir.Instr.t

type t = {
  func : Ir.Func.t;
  defs : (Ir.Instr.reg, def_site) Hashtbl.t;
  uses : (Ir.Instr.reg, int list) Hashtbl.t;  (** reg -> uids of users *)
}

let compute (f : Ir.Func.t) =
  let defs = Hashtbl.create 64 in
  let uses = Hashtbl.create 64 in
  let add_use r uid =
    let old = try Hashtbl.find uses r with Not_found -> [] in
    Hashtbl.replace uses r (uid :: old)
  in
  List.iter (fun r -> Hashtbl.replace defs r Param) f.params;
  Ir.Func.iter_blocks
    (fun b ->
      List.iter
        (fun (phi : Ir.Instr.phi) ->
          Hashtbl.replace defs phi.phi_dest (Phi_def (b, phi));
          List.iter
            (fun (_, op) ->
              match op with
              | Ir.Instr.Reg r -> add_use r phi.phi_uid
              | Ir.Instr.Imm _ -> ())
            phi.incoming)
        b.phis;
      Array.iter
        (fun (ins : Ir.Instr.t) ->
          (match ins.dest with
           | Some r -> Hashtbl.replace defs r (Instr_def (b, ins))
           | None -> ());
          List.iter (fun r -> add_use r ins.uid) (Ir.Instr.uses ins))
        b.body)
    f

  ;
  { func = f; defs; uses }

let def_of t r = Hashtbl.find_opt t.defs r

let uses_of t r = try Hashtbl.find t.uses r with Not_found -> []

(** Whether the producer chain stops at this definition instead of recursing:
    loads (memory traffic), calls, allocs (side effects) and constants. *)
let chain_terminator (ins : Ir.Instr.t) =
  match ins.kind with
  | Load _ | Call _ | Alloc _ | Const _ -> true
  | Binop _ | Unop _ | Icmp _ | Fcmp _ | Select _ -> false
  | Store _ | Dup_check _ | Value_check _ -> true

(** [producer_chain t r] walks the use-def closure of [r] and returns the
    value-producing instructions encountered, innermost last.  The walk stops
    at chain terminators, phi definitions and parameters (their registers are
    reported through [stops]). *)
let producer_chain t r =
  let visited = Hashtbl.create 16 in
  let chain = ref [] in
  let stops = ref [] in
  let rec walk r =
    if not (Hashtbl.mem visited r) then begin
      Hashtbl.replace visited r ();
      match def_of t r with
      | None | Some Param -> stops := r :: !stops
      | Some (Phi_def _) -> stops := r :: !stops
      | Some (Instr_def (_, ins)) ->
        if chain_terminator ins then stops := r :: !stops
        else begin
          chain := ins :: !chain;
          List.iter walk (Ir.Instr.uses ins)
        end
    end
  in
  walk r;
  (!chain, !stops)
