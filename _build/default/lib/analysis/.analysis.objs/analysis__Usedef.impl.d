lib/analysis/usedef.ml: Array Hashtbl Ir List
