lib/analysis/loops.ml: Array Cfg Dom Hashtbl Ir List
