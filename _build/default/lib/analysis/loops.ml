(** Natural-loop detection.

    A back edge is an edge [latch -> header] where [header] dominates
    [latch]; the natural loop of that edge is [header] plus every block that
    reaches [latch] without passing through [header].  Loops sharing a header
    are merged, as in LLVM's LoopInfo.  The paper's state variables are
    exactly the phi nodes sitting in these headers. *)

type loop = {
  header : int;
  latches : int list;          (** sources of back edges into [header] *)
  body : int list;             (** all member nodes, including the header *)
  depth : int;                 (** 1 = outermost *)
}

type t = {
  cfg : Cfg.t;
  loops : loop list;           (** outermost first, then by header id *)
  loop_of_header : (int, loop) Hashtbl.t;
}

let natural_loop (cfg : Cfg.t) ~header ~latches =
  let in_loop = Hashtbl.create 16 in
  Hashtbl.replace in_loop header ();
  let rec pull node =
    if not (Hashtbl.mem in_loop node) then begin
      Hashtbl.replace in_loop node ();
      List.iter pull cfg.pred.(node)
    end
  in
  List.iter pull latches;
  Hashtbl.fold (fun node () acc -> node :: acc) in_loop []
  |> List.sort compare

let compute (cfg : Cfg.t) =
  let dom = Dom.compute cfg in
  let n = Cfg.n_blocks cfg in
  let reachable = Cfg.reachable cfg in
  (* Group back edges by header. *)
  let latches_of = Hashtbl.create 8 in
  for node = 0 to n - 1 do
    if reachable.(node) then
      List.iter
        (fun succ ->
          if Dom.dominates dom succ node then begin
            let old = try Hashtbl.find latches_of succ with Not_found -> [] in
            Hashtbl.replace latches_of succ (node :: old)
          end)
        cfg.succ.(node)
  done;
  let headers =
    Hashtbl.fold (fun h _ acc -> h :: acc) latches_of [] |> List.sort compare
  in
  let raw_loops =
    List.map
      (fun header ->
        let latches = List.sort compare (Hashtbl.find latches_of header) in
        let body = natural_loop cfg ~header ~latches in
        { header; latches; body; depth = 0 })
      headers
  in
  (* Nesting depth: loop A contains loop B if A's body contains B's header
     and the loops differ. *)
  let depth_of l =
    1
    + List.length
        (List.filter
           (fun outer ->
             outer.header <> l.header && List.mem l.header outer.body)
           raw_loops)
  in
  let loops = List.map (fun l -> { l with depth = depth_of l }) raw_loops in
  let loop_of_header = Hashtbl.create 8 in
  List.iter (fun l -> Hashtbl.replace loop_of_header l.header l) loops;
  { cfg; loops; loop_of_header }

let is_header t node = Hashtbl.mem t.loop_of_header node

(** Innermost loop containing [node], if any. *)
let innermost_containing t node =
  List.fold_left
    (fun best l ->
      if List.mem node l.body then
        match best with
        | None -> Some l
        | Some b -> if l.depth > b.depth then Some l else best
      else best)
    None t.loops

(** Header phi nodes of every loop: the paper's state variables. *)
let header_phis t =
  List.concat_map
    (fun l ->
      let b = Cfg.block t.cfg l.header in
      List.map (fun phi -> (l, b, phi)) b.Ir.Block.phis)
    t.loops
