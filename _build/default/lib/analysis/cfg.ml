(** Control-flow graph of one function, with blocks numbered densely so
    downstream analyses can use arrays. *)

type t = {
  func : Ir.Func.t;
  blocks : Ir.Block.t array;              (** indexed by node id *)
  index_of : (string, int) Hashtbl.t;     (** label -> node id *)
  succ : int list array;
  pred : int list array;
  entry : int;
}

let of_func (f : Ir.Func.t) =
  let blocks = Array.of_list f.blocks in
  let n = Array.length blocks in
  let index_of = Hashtbl.create n in
  Array.iteri (fun i (b : Ir.Block.t) -> Hashtbl.replace index_of b.label i) blocks;
  let succ = Array.make n [] in
  let pred = Array.make n [] in
  Array.iteri
    (fun i b ->
      let ss =
        List.map (fun l -> Hashtbl.find index_of l) (Ir.Block.successors b)
      in
      succ.(i) <- ss;
      List.iter (fun s -> pred.(s) <- i :: pred.(s)) ss)
    blocks;
  let entry = Hashtbl.find index_of f.entry in
  { func = f; blocks; index_of; succ; pred; entry }

let n_blocks t = Array.length t.blocks

let block t i = t.blocks.(i)
let label t i = t.blocks.(i).Ir.Block.label
let index t lbl = Hashtbl.find t.index_of lbl

(** Reverse postorder from the entry; unreachable blocks are excluded. *)
let reverse_postorder t =
  let n = n_blocks t in
  let visited = Array.make n false in
  let order = ref [] in
  let rec dfs i =
    if not visited.(i) then begin
      visited.(i) <- true;
      List.iter dfs t.succ.(i);
      order := i :: !order
    end
  in
  dfs t.entry;
  Array.of_list !order

let reachable t =
  let n = n_blocks t in
  let seen = Array.make n false in
  let rec dfs i =
    if not seen.(i) then begin
      seen.(i) <- true;
      List.iter dfs t.succ.(i)
    end
  in
  dfs t.entry;
  seen
