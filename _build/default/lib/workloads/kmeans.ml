open Ir

(** [kmeans] — clustering (in-house, as in the paper).

    Standard Lloyd iterations over multi-dimensional float points: assign
    each point to the nearest centroid, recompute centroids, repeat.  The
    centroids carried across iterations and the per-cluster accumulators
    are the critical state.  Fidelity is the fraction of points whose final
    assignment changed (classification error, 10 %). *)

let name = "kmeans"
let suite = "in-house"
let category = "machine learning"
let description = "Clustering algorithm"
let metric = Fidelity.Metric.class_error_spec 0.10

let clusters = 4
let dims = 4
let iters = 8
let train_n = 160
let test_n = 120
let train_desc = Printf.sprintf "train %dx%d samples" train_n dims
let test_desc = Printf.sprintf "test %dx%d samples" test_n dims

(* Parameters: points, n, d, k, iters, labels. Returns assignment checksum. *)
let build () =
  let prog = Prog.create () in
  let b = Builder.create prog ~name:Workload.entry ~n_params:6 in
  let points = Builder.param b 0 in
  let n = Builder.param b 1 in
  let d = Builder.param b 2 in
  let k = Builder.param b 3 in
  let n_iters = Builder.param b 4 in
  let labels = Builder.param b 5 in
  let kd = Builder.mul b k d in
  let centroids = Builder.alloc b kd in
  let sums = Builder.alloc b kd in
  let counts = Builder.alloc b k in
  (* Initial centroids: the first k points. *)
  Builder.for_each b ~from:(Builder.imm 0) ~until:kd ~body:(fun ~i ->
    Builder.seti b centroids i (Builder.geti b points i));
  Builder.for_each b ~from:(Builder.imm 0) ~until:n_iters ~body:(fun ~i:_ ->
    Builder.for_each b ~from:(Builder.imm 0) ~until:kd ~body:(fun ~i ->
      Builder.seti b sums i (Builder.immf 0.0));
    Builder.for_each b ~from:(Builder.imm 0) ~until:k ~body:(fun ~i:c ->
      Builder.seti b counts c (Builder.imm 0));
    (* Assignment sweep. *)
    Builder.for_each b ~from:(Builder.imm 0) ~until:n ~body:(fun ~i:p ->
      let px_base = Builder.mul b p d in
      let best_c, _best_d =
        Kutil.for2 b ~from:(Builder.imm 0) ~until:k
          ~init:(Builder.imm 0, Builder.immf infinity)
          ~body:(fun ~i:c bc bd ->
            let c_base = Builder.mul b c d in
            let dist =
              Kutil.fsum b ~from:(Builder.imm 0) ~until:d ~f:(fun ~i:j ->
                let x = Builder.geti b points (Builder.add b px_base j) in
                let m = Builder.geti b centroids (Builder.add b c_base j) in
                let diff = Builder.fsub b x m in
                Builder.fmul b diff diff)
            in
            let better = Builder.flt b dist bd in
            (Builder.select b better c bc, Builder.select b better dist bd))
      in
      Builder.seti b labels p best_c;
      let s_base = Builder.mul b best_c d in
      Builder.for_each b ~from:(Builder.imm 0) ~until:d ~body:(fun ~i:j ->
        let x = Builder.geti b points (Builder.add b px_base j) in
        let slot = Builder.add b s_base j in
        Builder.seti b sums slot (Builder.fadd b (Builder.geti b sums slot) x));
      Builder.seti b counts best_c
        (Builder.add b (Builder.geti b counts best_c) (Builder.imm 1)));
    (* Centroid update. *)
    Builder.for_each b ~from:(Builder.imm 0) ~until:k ~body:(fun ~i:c ->
      let cnt = Builder.geti b counts c in
      let has_members = Builder.gt b cnt (Builder.imm 0) in
      let denom = Builder.float_of_int b (Kutil.imax b cnt (Builder.imm 1)) in
      let c_base = Builder.mul b c d in
      Builder.for_each b ~from:(Builder.imm 0) ~until:d ~body:(fun ~i:j ->
        let slot = Builder.add b c_base j in
        let mean = Builder.fdiv b (Builder.geti b sums slot) denom in
        let old = Builder.geti b centroids slot in
        Builder.seti b centroids slot
          (Builder.select b has_members mean old))));
  let checksum =
    Kutil.isum b ~from:(Builder.imm 0) ~until:n ~f:(fun ~i:p ->
      Builder.geti b labels p)
  in
  Builder.ret b checksum;
  Builder.finish b;
  prog

let fresh_state role =
  let n, seed =
    match role with
    | Workload.Train -> (train_n, 121)
    | Workload.Test -> (test_n, 122)
  in
  let points_data, (_ : int array) =
    Synth.clustered_points ~seed ~n ~d:dims ~k:clusters
  in
  let mem = Interp.Memory.create () in
  let points = Interp.Memory.alloc_floats mem points_data in
  let labels = Interp.Memory.alloc mem n in
  let read_output (_ : Value.t option) =
    Array.map float_of_int (Interp.Memory.read_ints_tolerant mem labels n)
  in
  { Faults.Campaign.mem;
    args =
      [ Value.of_int points; Value.of_int n; Value.of_int dims;
        Value.of_int clusters; Value.of_int iters; Value.of_int labels ];
    read_output }

let workload =
  { Workload.name; suite; category; description; train_desc; test_desc;
    metric; build; fresh_state }
