(** The uniform interface every benchmark implements (paper Table I).

    A workload bundles the IR kernel (built fresh per protection variant,
    since passes mutate programs in place), the recipe to materialize its
    train/test input state, the output reader, and the fidelity metric with
    its acceptance threshold. *)

type input_role =
  | Train    (** used for value profiling, the offline step *)
  | Test     (** used for fault injection and overhead measurement *)

let role_name = function Train -> "train" | Test -> "test"

type t = {
  name : string;
  suite : string;        (** provenance in the paper: mediabench, mibench, ... *)
  category : string;     (** image, audio, video, computer vision, machine learning *)
  description : string;
  train_desc : string;   (** Table I column 3, first row *)
  test_desc : string;    (** Table I column 3, second row *)
  metric : Fidelity.Metric.spec;
  build : unit -> Ir.Prog.t;
  fresh_state : input_role -> Faults.Campaign.run_state;
}

(** Entry point symbol shared by all workloads. *)
let entry = "main"

(** Wrap a workload as a fault-campaign subject for a given program variant
    (the variant is built and protected by the caller). *)
let subject ?label w ~role ~prog =
  { Faults.Campaign.label =
      (match label with
       | Some l -> l
       | None -> Printf.sprintf "%s/%s" w.name (role_name role));
    prog;
    entry;
    fresh_state = (fun () -> w.fresh_state role);
    metric = w.metric }

(** Fault-free execution of a fresh build on [role]'s input; convenience for
    tests and overhead measurements. *)
let golden ?prog w ~role =
  let prog = match prog with Some p -> p | None -> w.build () in
  Faults.Campaign.golden_run (subject w ~role ~prog)

(** Value profiling on the training input (the paper's offline step).
    [role] may be overridden for the cross-validation experiment. *)
let profile ?params ?prog ?(role = Train) w =
  let prog = match prog with Some p -> p | None -> w.build () in
  let state = w.fresh_state role in
  let p, (result : Interp.Machine.result) =
    Profiling.Value_profile.collect ?params prog ~entry ~args:state.args
      ~mem:state.mem
  in
  (match result.stop with
   | Interp.Machine.Finished _ -> ()
   | stop ->
     failwith
       (Format.asprintf "%s: profiling run failed: %a" w.name
          Interp.Machine.pp_stop stop));
  p
