open Ir

(** [h264enc] — H.264-style video encoder (mediabench II).

    Intra-codes the first frame, then per 8x8 block runs full-search motion
    estimation against the reconstructed previous frame and quantized
    residual coding, maintaining the reconstruction loop.  The stream write
    pointer and the reconstruction state carry across blocks and frames. *)

let name = "h264enc"
let suite = "mediabench II"
let category = "video"
let description = "H.264 video encoding"
let metric = Fidelity.Metric.psnr_spec 30.0

let train_w, train_h, train_frames = 32, 24, 3
let test_w, test_h, test_frames = 24, 24, 3
let train_desc = "train 32x24x3 video"
let test_desc = "test 24x24x3 video"

let blk = H264_common.blk
let qstep = H264_common.q

(* Parameters: video, w, h, n_frames, recon, out. Returns stream length. *)
let build () =
  let prog = Prog.create () in
  let b = Builder.create prog ~name:Workload.entry ~n_params:6 in
  let video = Builder.param b 0 in
  let w = Builder.param b 1 in
  let h = Builder.param b 2 in
  let n_frames = Builder.param b 3 in
  let recon = Builder.param b 4 in
  let out = Builder.param b 5 in
  let i8 = Builder.imm blk in
  let wh = Builder.mul b w h in
  (* Intra frame: copy source into both the stream and the reconstruction. *)
  Builder.for_each b ~from:(Builder.imm 0) ~until:wh ~body:(fun ~i:p ->
    let v = Builder.geti b video p in
    Builder.seti b recon p v;
    Builder.seti b out p v);
  let nbx = Builder.sdiv b w i8 in
  let nby = Builder.sdiv b h i8 in
  let n_blocks = Builder.mul b nby nbx in
  let hi_y = Builder.sub b h i8 in
  let hi_x = Builder.sub b w i8 in
  let sp_final =
    Kutil.for1 b ~from:(Builder.imm 1) ~until:n_frames
      ~init:(Builder.add b out wh)
      ~body:(fun ~i:f sp_frame ->
        let cur_base = Builder.add b video (Builder.mul b f wh) in
        let prev_base =
          Builder.add b recon (Builder.mul b (Builder.sub b f (Builder.imm 1)) wh)
        in
        let rec_base = Builder.add b recon (Builder.mul b f wh) in
        Kutil.for1 b ~from:(Builder.imm 0) ~until:n_blocks ~init:sp_frame
          ~body:(fun ~i:blk_i sp ->
            let by = Builder.sdiv b blk_i nbx in
            let bx = Builder.srem b blk_i nbx in
            let y0 = Builder.mul b by i8 in
            let x0 = Builder.mul b bx i8 in
            (* Full-search motion estimation over a clamped window. *)
            let (_cost, bry, brx) =
              Kutil.for3 b ~from:(Builder.imm 0)
                ~until:(Builder.imm ((2 * H264_common.search) + 1))
                ~init:(Builder.imm max_int, y0, x0)
                ~body:(fun ~i:dyi cost0 bry0 brx0 ->
                  let ry =
                    Kutil.imax b (Builder.imm 0)
                      (Kutil.imin b
                         (Builder.add b y0
                            (Builder.sub b dyi (Builder.imm H264_common.search)))
                         hi_y)
                  in
                  Kutil.for3 b ~from:(Builder.imm 0)
                    ~until:(Builder.imm ((2 * H264_common.search) + 1))
                    ~init:(cost0, bry0, brx0)
                    ~body:(fun ~i:dxi cost bry brx ->
                      let rx =
                        Kutil.imax b (Builder.imm 0)
                          (Kutil.imin b
                             (Builder.add b x0
                                (Builder.sub b dxi
                                   (Builder.imm H264_common.search)))
                             hi_x)
                      in
                      let sad =
                        Kutil.isum b ~from:(Builder.imm 0) ~until:i8
                          ~f:(fun ~i:yy ->
                            Kutil.isum b ~from:(Builder.imm 0) ~until:i8
                              ~f:(fun ~i:xx ->
                                let c =
                                  Kutil.get2 b cur_base
                                    ~row:(Builder.add b y0 yy) ~ncols:w
                                    ~col:(Builder.add b x0 xx)
                                in
                                let r =
                                  Kutil.get2 b prev_base
                                    ~row:(Builder.add b ry yy) ~ncols:w
                                    ~col:(Builder.add b rx xx)
                                in
                                Kutil.iabs b (Builder.sub b c r)))
                      in
                      let better = Builder.lt b sad cost in
                      (Builder.select b better sad cost,
                       Builder.select b better ry bry,
                       Builder.select b better rx brx)))
            in
            Builder.store b sp (Builder.sub b bry y0);
            Builder.store b (Builder.add b sp (Builder.imm 1))
              (Builder.sub b brx x0);
            (* Quantized residual + reconstruction update. *)
            Builder.for_each b ~from:(Builder.imm 0) ~until:i8 ~body:(fun ~i:yy ->
              Builder.for_each b ~from:(Builder.imm 0) ~until:i8
                ~body:(fun ~i:xx ->
                  let c =
                    Kutil.get2 b cur_base ~row:(Builder.add b y0 yy) ~ncols:w
                      ~col:(Builder.add b x0 xx)
                  in
                  let p =
                    Kutil.get2 b prev_base ~row:(Builder.add b bry yy) ~ncols:w
                      ~col:(Builder.add b brx xx)
                  in
                  let r = Builder.sub b c p in
                  let bias =
                    Builder.select b (Builder.ge b r (Builder.imm 0))
                      (Builder.imm (qstep / 2))
                      (Builder.imm (-(qstep / 2)))
                  in
                  let rq = Builder.sdiv b (Builder.add b r bias) (Builder.imm qstep) in
                  let slot =
                    Builder.add b sp
                      (Builder.add b (Builder.imm 2)
                         (Builder.add b (Builder.mul b yy i8) xx))
                  in
                  Builder.store b slot rq;
                  let v =
                    Kutil.clamp b
                      (Builder.add b p (Builder.mul b rq (Builder.imm qstep)))
                      ~lo:0 ~hi:255
                  in
                  Kutil.set2 b rec_base ~row:(Builder.add b y0 yy) ~ncols:w
                    ~col:(Builder.add b x0 xx) v));
            Builder.add b sp (Builder.imm H264_common.block_words)))
  in
  Builder.ret b (Builder.sub b sp_final out);
  Builder.finish b;
  prog

let fresh_state role =
  let w, h, frames, seed =
    match role with
    | Workload.Train -> (train_w, train_h, train_frames, 81)
    | Workload.Test -> (test_w, test_h, test_frames, 82)
  in
  let video_data = Synth.video ~seed ~w ~h ~frames in
  let mem = Interp.Memory.create () in
  let video = Interp.Memory.alloc_ints mem video_data in
  let recon = Interp.Memory.alloc mem (frames * w * h) in
  let out_words = H264_common.stream_words ~w ~h ~frames in
  let out = Interp.Memory.alloc mem out_words in
  let read_output (_ : Value.t option) =
    let stream = Interp.Memory.read_ints_tolerant mem out out_words in
    H264_common.host_decode ~stream ~w ~h ~frames
  in
  { Faults.Campaign.mem;
    args =
      [ Value.of_int video; Value.of_int w; Value.of_int h;
        Value.of_int frames; Value.of_int recon; Value.of_int out ];
    read_output }

let workload =
  { Workload.name; suite; category; description; train_desc; test_desc;
    metric; build; fresh_state }
