open Ir

(** [segm] — image segmentation (SD-VBS).

    Iterative intensity clustering: pixels are partitioned into K segments
    by repeated assign-to-nearest / recompute-center sweeps, producing a
    segment label matrix.  The cluster centers carried across iterations
    are the critical state; fidelity is the fraction of label cells that
    differ from the fault-free segmentation (10 % threshold, Table I). *)

let name = "segm"
let suite = "SD-VBS"
let category = "computer vision"
let description = "Image segmentation"
let metric = Fidelity.Metric.mismatch_spec 0.10

let train_w, train_h = 40, 32
let test_w, test_h = 32, 32
let segments = 4
let iters = 6
let train_desc = Printf.sprintf "train %dx%d image" train_w train_h
let test_desc = Printf.sprintf "test %dx%d image" test_w test_h

(* Parameters: img, n_pixels, k, iters, labels. Returns center checksum. *)
let build () =
  let prog = Prog.create () in
  let b = Builder.create prog ~name:Workload.entry ~n_params:5 in
  let img = Builder.param b 0 in
  let n = Builder.param b 1 in
  let k = Builder.param b 2 in
  let n_iters = Builder.param b 3 in
  let labels = Builder.param b 4 in
  let centers = Builder.alloc b k in
  let sums = Builder.alloc b k in
  let counts = Builder.alloc b k in
  (* Intensity range scan. *)
  let mn, mx =
    Kutil.for2 b ~from:(Builder.imm 0) ~until:n
      ~init:(Builder.imm 255, Builder.imm 0)
      ~body:(fun ~i:p mn mx ->
        let v = Builder.geti b img p in
        (Kutil.imin b mn v, Kutil.imax b mx v))
  in
  (* Evenly spaced initial centers. *)
  Builder.for_each b ~from:(Builder.imm 0) ~until:k ~body:(fun ~i:c ->
    let span = Builder.sub b mx mn in
    let num =
      Builder.mul b span
        (Builder.add b (Builder.mul b c (Builder.imm 2)) (Builder.imm 1))
    in
    let offset = Builder.sdiv b num (Builder.mul b k (Builder.imm 2)) in
    Builder.seti b centers c (Builder.add b mn offset));
  (* Lloyd sweeps. *)
  Builder.for_each b ~from:(Builder.imm 0) ~until:n_iters ~body:(fun ~i:_ ->
    Builder.for_each b ~from:(Builder.imm 0) ~until:k ~body:(fun ~i:c ->
      Builder.seti b sums c (Builder.imm 0);
      Builder.seti b counts c (Builder.imm 0));
    Builder.for_each b ~from:(Builder.imm 0) ~until:n ~body:(fun ~i:p ->
      let v = Builder.geti b img p in
      let best_c, _best_d =
        Kutil.for2 b ~from:(Builder.imm 0) ~until:k
          ~init:(Builder.imm 0, Builder.imm max_int)
          ~body:(fun ~i:c bc bd ->
            let d = Kutil.iabs b (Builder.sub b v (Builder.geti b centers c)) in
            let better = Builder.lt b d bd in
            (Builder.select b better c bc, Builder.select b better d bd))
      in
      Builder.seti b labels p best_c;
      Builder.seti b sums best_c
        (Builder.add b (Builder.geti b sums best_c) v);
      Builder.seti b counts best_c
        (Builder.add b (Builder.geti b counts best_c) (Builder.imm 1)));
    Builder.for_each b ~from:(Builder.imm 0) ~until:k ~body:(fun ~i:c ->
      let cnt = Builder.geti b counts c in
      let has_members = Builder.gt b cnt (Builder.imm 0) in
      let safe = Kutil.imax b cnt (Builder.imm 1) in
      let mean = Builder.sdiv b (Builder.geti b sums c) safe in
      let old = Builder.geti b centers c in
      Builder.seti b centers c (Builder.select b has_members mean old)));
  let checksum =
    Kutil.isum b ~from:(Builder.imm 0) ~until:k ~f:(fun ~i:c ->
      Builder.geti b centers c)
  in
  Builder.ret b checksum;
  Builder.finish b;
  prog

let fresh_state role =
  let w, h, seed =
    match role with
    | Workload.Train -> (train_w, train_h, 101)
    | Workload.Test -> (test_w, test_h, 102)
  in
  let pixels = Synth.gray_image ~seed ~w ~h in
  let mem = Interp.Memory.create () in
  let img = Interp.Memory.alloc_ints mem pixels in
  let labels = Interp.Memory.alloc mem (w * h) in
  let read_output (_ : Value.t option) =
    Array.map float_of_int (Interp.Memory.read_ints_tolerant mem labels (w * h))
  in
  { Faults.Campaign.mem;
    args =
      [ Value.of_int img; Value.of_int (w * h); Value.of_int segments;
        Value.of_int iters; Value.of_int labels ];
    read_output }

let workload =
  { Workload.name; suite; category; description; train_desc; test_desc;
    metric; build; fresh_state }
