open Ir

(** [mp3dec] — MP3-style audio decoder (mibench mad family).

    Per frame: read the scalefactor, dequantize the 32 subband codes and run
    the synthesis transform back to PCM.  The stream read pointer carries
    across frames. *)

let name = "mp3dec"
let suite = "mibench"
let category = "audio"
let description = "Audio decoding (subband)"
let metric = Fidelity.Metric.psnr_spec ~peak:32768.0 30.0

let train_n = 1280
let test_n = 768
let train_desc = "train 1280-sample audio"
let test_desc = "test 768-sample audio"

let bands = Mp3_common.bands

(* Parameters: stream, n_frames, ctab, out. Returns a checksum. *)
let build () =
  let prog = Prog.create () in
  let b = Builder.create prog ~name:Workload.entry ~n_params:4 in
  let stream = Builder.param b 0 in
  let n_frames = Builder.param b 1 in
  let ctab = Builder.param b 2 in
  let out = Builder.param b 3 in
  let nb = Builder.imm bands in
  let coeffs = Builder.alloc b nb in
  let (checksum, _rp) =
    Kutil.for2 b ~from:(Builder.imm 0) ~until:n_frames
      ~init:(Builder.imm 0, stream)
      ~body:(fun ~i:f sum rp ->
        let sf = Builder.load b rp in
        let sff = Builder.float_of_int b (Kutil.imax b sf (Builder.imm 1)) in
        (* Dequantize. *)
        Builder.for_each b ~from:(Builder.imm 0) ~until:nb ~body:(fun ~i:k ->
          let q =
            Builder.load b (Builder.add b (Builder.add b rp (Builder.imm 1)) k)
          in
          let c =
            Builder.fdiv b
              (Builder.fmul b (Builder.float_of_int b q) sff)
              (Builder.immf (float_of_int Mp3_common.qmax))
          in
          Builder.seti b coeffs k c);
        (* Synthesis transform: pcm[i] = sum_k ctab[k][i] * coeffs[k]. *)
        let base = Builder.mul b f nb in
        Builder.for_each b ~from:(Builder.imm 0) ~until:nb ~body:(fun ~i ->
          let acc =
            Kutil.fsum b ~from:(Builder.imm 0) ~until:nb ~f:(fun ~i:k ->
              let c = Kutil.get2 b ctab ~row:k ~ncols:nb ~col:i in
              Builder.fmul b c (Builder.geti b coeffs k))
          in
          let s = Kutil.clamp b (Kutil.round b acc) ~lo:(-32768) ~hi:32767 in
          Builder.seti b out (Builder.add b base i) s);
        (Builder.add b sum sf, Builder.add b rp (Builder.imm Mp3_common.frame_words)))
  in
  Builder.ret b checksum;
  Builder.finish b;
  prog

let fresh_state role =
  let n, seed =
    match role with
    | Workload.Train -> (train_n, 71)
    | Workload.Test -> (test_n, 72)
  in
  let pcm_data = Synth.audio ~seed ~n in
  let stream_data = Mp3_common.host_encode pcm_data in
  let n_frames = n / bands in
  let mem = Interp.Memory.create () in
  let stream = Interp.Memory.alloc_ints mem stream_data in
  let ctab = Mp3_common.alloc_tables mem in
  let out = Interp.Memory.alloc mem n in
  let read_output (_ : Value.t option) =
    Array.map float_of_int (Interp.Memory.read_ints_tolerant mem out n)
  in
  { Faults.Campaign.mem;
    args =
      [ Value.of_int stream; Value.of_int n_frames; Value.of_int ctab;
        Value.of_int out ];
    read_output }

let workload =
  { Workload.name; suite; category; description; train_desc; test_desc;
    metric; build; fresh_state }
