(** Shared pieces of the H.264-style video codec pair.

    The computational skeleton of a hybrid video coder: the first frame is
    coded raw (intra), subsequent frames are coded per 8x8 block with
    full-search motion estimation over the *reconstructed* previous frame,
    followed by quantized residual coding.  Using the reconstruction (not
    the source) as reference keeps encoder and decoder in lock step, as in
    a real codec — and makes the reconstruction loop genuinely stateful.

    Stream format: frame 0 pixels raw, then per inter block
    [mvy; mvx; 64 quantized residuals]. *)

let blk = 8

(* Motion search radius (full search) and residual quantizer step. *)
let search = 2
let q = 8

let block_words = 2 + (blk * blk)

let clamp lo hi v = if v < lo then lo else if v > hi then hi else v

let quantize_residual r = (r + if r >= 0 then q / 2 else -(q / 2)) / q

(** Stream length in words for a [frames]-frame [w]x[h] sequence. *)
let stream_words ~w ~h ~frames =
  (w * h) + ((frames - 1) * (w / blk) * (h / blk) * block_words)

(** Host reference encoder, mirroring the kernel's search and quantization;
    produces the stream the IR decoder consumes. *)
let host_encode ~(video : int array) ~w ~h ~frames =
  let out = Array.make (stream_words ~w ~h ~frames) 0 in
  let recon = Array.make (frames * w * h) 0 in
  for p = 0 to (w * h) - 1 do
    out.(p) <- video.(p);
    recon.(p) <- video.(p)
  done;
  let sp = ref (w * h) in
  for f = 1 to frames - 1 do
    let cur p = video.((f * w * h) + p) in
    let prev p = recon.(((f - 1) * w * h) + p) in
    for by = 0 to (h / blk) - 1 do
      for bx = 0 to (w / blk) - 1 do
        let y0 = by * blk and x0 = bx * blk in
        let best = ref (max_int, y0, x0) in
        for dy = -search to search do
          for dx = -search to search do
            let ry = clamp 0 (h - blk) (y0 + dy) in
            let rx = clamp 0 (w - blk) (x0 + dx) in
            let sad = ref 0 in
            for y = 0 to blk - 1 do
              for x = 0 to blk - 1 do
                let c = cur (((y0 + y) * w) + x0 + x) in
                let r = prev (((ry + y) * w) + rx + x) in
                sad := !sad + abs (c - r)
              done
            done;
            let cost, _, _ = !best in
            if !sad < cost then best := (!sad, ry, rx)
          done
        done;
        let _, bry, brx = !best in
        out.(!sp) <- bry - y0;
        out.(!sp + 1) <- brx - x0;
        for y = 0 to blk - 1 do
          for x = 0 to blk - 1 do
            let c = cur (((y0 + y) * w) + x0 + x) in
            let p = prev (((bry + y) * w) + brx + x) in
            let rq = quantize_residual (c - p) in
            out.(!sp + 2 + (y * blk) + x) <- rq;
            recon.((f * w * h) + ((y0 + y) * w) + x0 + x) <-
              clamp 0 255 (p + (rq * q))
          done
        done;
        sp := !sp + block_words
      done
    done
  done;
  out

(** Defensive host decoder: stream -> pixels of all frames as floats. *)
let host_decode ~(stream : int array) ~w ~h ~frames =
  let len = Array.length stream in
  let get i = if i >= 0 && i < len then stream.(i) else 0 in
  let recon = Array.make (frames * w * h) 0 in
  for p = 0 to (w * h) - 1 do
    recon.(p) <- clamp 0 255 (get p)
  done;
  let rp = ref (w * h) in
  for f = 1 to frames - 1 do
    for by = 0 to (h / blk) - 1 do
      for bx = 0 to (w / blk) - 1 do
        let y0 = by * blk and x0 = bx * blk in
        let ry = clamp 0 (h - blk) (y0 + get !rp) in
        let rx = clamp 0 (w - blk) (x0 + get (!rp + 1)) in
        for y = 0 to blk - 1 do
          for x = 0 to blk - 1 do
            let p = recon.(((f - 1) * w * h) + ((ry + y) * w) + rx + x) in
            let rq = get (!rp + 2 + (y * blk) + x) in
            recon.((f * w * h) + ((y0 + y) * w) + x0 + x) <-
              clamp 0 255 (p + (rq * q))
          done
        done;
        rp := !rp + block_words
      done
    done
  done;
  Array.map float_of_int recon
