(** Shared pieces of the G.721-style ADPCM codec pair.

    We implement the classic IMA/DVI ADPCM state machine (the same family
    of waveform codecs as mediabench's g721): a 4-bit code per sample, with
    a predicted value and a step index carried from sample to sample.  The
    (valpred, index) pair is the textbook example of loop-carried critical
    state — one corrupted prediction skews every following sample. *)

let step_table =
  [| 7; 8; 9; 10; 11; 12; 13; 14; 16; 17;
     19; 21; 23; 25; 28; 31; 34; 37; 41; 45;
     50; 55; 60; 66; 73; 80; 88; 97; 107; 118;
     130; 143; 157; 173; 190; 209; 230; 253; 279; 307;
     337; 371; 408; 449; 494; 544; 598; 658; 724; 796;
     876; 963; 1060; 1166; 1282; 1411; 1552; 1707; 1878; 2066;
     2272; 2499; 2749; 3024; 3327; 3660; 4026; 4428; 4871; 5358;
     5894; 6484; 7132; 7845; 8630; 9493; 10442; 11487; 12635; 13899;
     15289; 16818; 18500; 20350; 22385; 24623; 27086; 29794; 32767 |]

let index_table = [| -1; -1; -1; -1; 2; 4; 6; 8; -1; -1; -1; -1; 2; 4; 6; 8 |]

let clamp lo hi v = if v < lo then lo else if v > hi then hi else v

(** Decode one code given (valpred, index); returns (sample, valpred', index').
    Mirrors the IR decoder exactly (shared shift-add reconstruction). *)
let decode_step ~valpred ~index code =
  let code = code land 0xF in
  let step = step_table.(clamp 0 88 index) in
  (* vpdiff = (delta/2 + delta/4 + delta/8 + 1/8) * step, via shifts *)
  let vpdiff = ref (step lsr 3) in
  if code land 4 <> 0 then vpdiff := !vpdiff + step;
  if code land 2 <> 0 then vpdiff := !vpdiff + (step lsr 1);
  if code land 1 <> 0 then vpdiff := !vpdiff + (step lsr 2);
  let valpred =
    if code land 8 <> 0 then valpred - !vpdiff else valpred + !vpdiff
  in
  let valpred = clamp (-32768) 32767 valpred in
  let index = clamp 0 88 (index + index_table.(code)) in
  (valpred, valpred, index)

(** Encode one sample; returns (code, valpred', index'). *)
let encode_step ~valpred ~index sample =
  let step = step_table.(clamp 0 88 index) in
  let diff = sample - valpred in
  let sign = if diff < 0 then 8 else 0 in
  let diff = abs diff in
  let code = ref 0 in
  let vpdiff = ref (step lsr 3) in
  let d = ref diff in
  if !d >= step then begin code := 4; d := !d - step; vpdiff := !vpdiff + step end;
  let half = step lsr 1 in
  if !d >= half then begin
    code := !code lor 2; d := !d - half; vpdiff := !vpdiff + half
  end;
  let quarter = step lsr 2 in
  if !d >= quarter then begin
    code := !code lor 1; vpdiff := !vpdiff + quarter
  end;
  let valpred =
    if sign <> 0 then valpred - !vpdiff else valpred + !vpdiff
  in
  let valpred = clamp (-32768) 32767 valpred in
  let code = !code lor sign in
  let index = clamp 0 88 (index + index_table.(code)) in
  (code, valpred, index)

(** Host reference encoder: PCM16 -> 4-bit codes (one per word). *)
let host_encode pcm =
  let valpred = ref 0 and index = ref 0 in
  Array.map
    (fun s ->
      let code, v, i = encode_step ~valpred:!valpred ~index:!index s in
      valpred := v;
      index := i;
      code)
    pcm

(** Defensive host decoder: codes -> PCM16 floats (for fidelity scoring of
    a possibly-corrupted encoder output). *)
let host_decode codes =
  let valpred = ref 0 and index = ref 0 in
  Array.map
    (fun code ->
      let s, v, i = decode_step ~valpred:!valpred ~index:!index code in
      valpred := v;
      index := i;
      float_of_int s)
    codes

let alloc_tables mem =
  let steps = Interp.Memory.alloc_ints mem step_table in
  let indices = Interp.Memory.alloc_ints mem index_table in
  (steps, indices)

open Ir

(** Emit the shared predictor-update logic into a kernel.  Given the sign
    bit and vpdiff, produces (valpred', index') with clamping — identical
    shapes in encoder and decoder. *)
let emit_predictor_update b ~valpred ~index ~indices ~sign ~vpdiff ~code =
  let negative = Builder.ne b sign (Builder.imm 0) in
  let vp =
    Builder.select b negative
      (Builder.sub b valpred vpdiff)
      (Builder.add b valpred vpdiff)
  in
  let vp = Kutil.clamp b vp ~lo:(-32768) ~hi:32767 in
  let adjust = Builder.geti b indices code in
  let idx = Kutil.clamp b (Builder.add b index adjust) ~lo:0 ~hi:88 in
  (vp, idx)
