(** Shared pieces of the MP3-style perceptual audio codec pair.

    We implement the computational skeleton of an MPEG audio layer codec:
    framed analysis transform (an orthonormal 32-point DCT-II standing in
    for the polyphase filterbank), per-frame scalefactor extraction, and
    scalar quantization of the subband coefficients.  Frame stream format:
    [scalefactor; q_0 .. q_31] per frame.  The frame read/write pointers and
    the running scalefactor state are the loop-carried critical variables. *)

let bands = 32
let frame_words = bands + 1
let qmax = 127

(** Orthonormal 32-point DCT-II basis, row-major: ctab.(k*32+n). *)
let ctab =
  let t = Array.make (bands * bands) 0.0 in
  for k = 0 to bands - 1 do
    let s =
      if k = 0 then sqrt (1.0 /. float_of_int bands)
      else sqrt (2.0 /. float_of_int bands)
    in
    for n = 0 to bands - 1 do
      t.((k * bands) + n) <-
        s
        *. cos
             (Float.pi *. (float_of_int ((2 * n) + 1)) *. float_of_int k
              /. (2.0 *. float_of_int bands))
    done
  done;
  t

let round_half_away r =
  if r >= 0.0 then int_of_float (r +. 0.5) else -int_of_float (0.5 -. r)

let clamp lo hi v = if v < lo then lo else if v > hi then hi else v

(** Host reference encoder: PCM16 -> frame stream.  [n] must be a multiple
    of 32; callers arrange that. *)
let host_encode pcm =
  let n = Array.length pcm in
  let n_frames = n / bands in
  let out = Array.make (n_frames * frame_words) 0 in
  for f = 0 to n_frames - 1 do
    let coeffs =
      Array.init bands (fun k ->
        let acc = ref 0.0 in
        for i = 0 to bands - 1 do
          acc :=
            !acc +. (ctab.((k * bands) + i) *. float_of_int pcm.((f * bands) + i))
        done;
        !acc)
    in
    let scale =
      Array.fold_left (fun m c -> Float.max m (Float.abs c)) 1.0 coeffs
    in
    let sf = max 1 (round_half_away scale) in
    out.(f * frame_words) <- sf;
    for k = 0 to bands - 1 do
      let q =
        round_half_away (coeffs.(k) /. float_of_int sf *. float_of_int qmax)
      in
      out.((f * frame_words) + 1 + k) <- clamp (-qmax) qmax q
    done
  done;
  out

(** Defensive host decoder: frame stream -> PCM floats. *)
let host_decode stream =
  let n_frames = Array.length stream / frame_words in
  let out = Array.make (n_frames * bands) 0.0 in
  for f = 0 to n_frames - 1 do
    let sf = float_of_int (max 1 (abs stream.(f * frame_words))) in
    let coeffs =
      Array.init bands (fun k ->
        let q = clamp (-qmax) qmax stream.((f * frame_words) + 1 + k) in
        float_of_int q *. sf /. float_of_int qmax)
    in
    for i = 0 to bands - 1 do
      let acc = ref 0.0 in
      for k = 0 to bands - 1 do
        acc := !acc +. (ctab.((k * bands) + i) *. coeffs.(k))
      done;
      out.((f * bands) + i) <-
        float_of_int (clamp (-32768) 32767 (round_half_away !acc))
    done
  done;
  out

let alloc_tables mem = Interp.Memory.alloc_floats mem ctab
