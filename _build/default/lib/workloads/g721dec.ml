open Ir

(** [g721dec] — ADPCM audio decoder (mediabench g721 family).

    The decoder reconstructs PCM16 from 4-bit codes, carrying the same
    (predicted value, step index) state as the encoder. *)

let name = "g721dec"
let suite = "mediabench"
let category = "audio"
let description = "Audio decoding (ADPCM)"
let metric = Fidelity.Metric.seg_snr_spec 80.0

let train_n = 2400
let test_n = 1400
let train_desc = "train 2400-sample audio"
let test_desc = "test 1400-sample audio"

(* Parameters: codes, n, step_table, index_table, out. Returns predictor. *)
let build () =
  let prog = Prog.create () in
  let b = Builder.create prog ~name:Workload.entry ~n_params:5 in
  let codes = Builder.param b 0 in
  let n = Builder.param b 1 in
  let steps = Builder.param b 2 in
  let indices = Builder.param b 3 in
  let out = Builder.param b 4 in
  let (valpred_final, _index_final) =
    Kutil.for2 b ~from:(Builder.imm 0) ~until:n
      ~init:(Builder.imm 0, Builder.imm 0)
      ~body:(fun ~i valpred index ->
        let code = Builder.and_ b (Builder.geti b codes i) (Builder.imm 0xF) in
        let step = Builder.geti b steps index in
        let vpd0 = Builder.ashr b step (Builder.imm 3) in
        let bit4 = Builder.ne b (Builder.and_ b code (Builder.imm 4)) (Builder.imm 0) in
        let vpd1 =
          Builder.select b bit4 (Builder.add b vpd0 step) vpd0
        in
        let bit2 = Builder.ne b (Builder.and_ b code (Builder.imm 2)) (Builder.imm 0) in
        let vpd2 =
          Builder.select b bit2
            (Builder.add b vpd1 (Builder.ashr b step (Builder.imm 1)))
            vpd1
        in
        let bit1 = Builder.ne b (Builder.and_ b code (Builder.imm 1)) (Builder.imm 0) in
        let vpd3 =
          Builder.select b bit1
            (Builder.add b vpd2 (Builder.ashr b step (Builder.imm 2)))
            vpd2
        in
        let sign = Builder.and_ b code (Builder.imm 8) in
        let vp', idx' =
          Adpcm_common.emit_predictor_update b ~valpred ~index ~indices ~sign
            ~vpdiff:vpd3 ~code
        in
        Builder.seti b out i vp';
        (vp', idx'))
  in
  Builder.ret b valpred_final;
  Builder.finish b;
  prog

let fresh_state role =
  let n, seed =
    match role with
    | Workload.Train -> (train_n, 51)
    | Workload.Test -> (test_n, 52)
  in
  let pcm_data = Synth.audio ~seed ~n in
  let code_data = Adpcm_common.host_encode pcm_data in
  let mem = Interp.Memory.create () in
  let codes = Interp.Memory.alloc_ints mem code_data in
  let steps, indices = Adpcm_common.alloc_tables mem in
  let out = Interp.Memory.alloc mem n in
  let read_output (_ : Value.t option) =
    Array.map float_of_int (Interp.Memory.read_ints_tolerant mem out n)
  in
  { Faults.Campaign.mem;
    args =
      [ Value.of_int codes; Value.of_int n; Value.of_int steps;
        Value.of_int indices; Value.of_int out ];
    read_output }

let workload =
  { Workload.name; suite; category; description; train_desc; test_desc;
    metric; build; fresh_state }
