open Ir

(** Small combinators over {!Ir.Builder} shared by the workload kernels:
    counted loops carrying one/two/three values without match boilerplate,
    2-D addressing, rounding and clamping idioms. *)

let reg r = Instr.Reg r

(** Counted loop carrying one value; returns its final value. *)
let for1 b ~from ~until ~init ~body =
  match
    Builder.for_up b ~from ~until ~carried:[ init ]
      ~body:(fun ~i regs ->
        match regs with
        | [ acc ] -> [ body ~i (reg acc) ]
        | [] | _ :: _ :: _ -> assert false)
      ()
  with
  | [ r ] -> reg r
  | [] | _ :: _ :: _ -> assert false

(** Counted loop carrying two values. *)
let for2 b ~from ~until ~init:(i1, i2) ~body =
  match
    Builder.for_up b ~from ~until ~carried:[ i1; i2 ]
      ~body:(fun ~i regs ->
        match regs with
        | [ a; c ] ->
          let x, y = body ~i (reg a) (reg c) in
          [ x; y ]
        | [] | [ _ ] | _ :: _ :: _ :: _ -> assert false)
      ()
  with
  | [ r1; r2 ] -> (reg r1, reg r2)
  | [] | [ _ ] | _ :: _ :: _ :: _ -> assert false

(** Counted loop carrying three values. *)
let for3 b ~from ~until ~init:(i1, i2, i3) ~body =
  match
    Builder.for_up b ~from ~until ~carried:[ i1; i2; i3 ]
      ~body:(fun ~i regs ->
        match regs with
        | [ a; c; d ] ->
          let x, y, z = body ~i (reg a) (reg c) (reg d) in
          [ x; y; z ]
        | _ -> assert false)
      ()
  with
  | [ r1; r2; r3 ] -> (reg r1, reg r2, reg r3)
  | _ -> assert false

(** Two-way conditional carrying one merged value. *)
let if1 b cond ~then_ ~else_ =
  match Builder.if_ b cond ~then_:(fun () -> [ then_ () ])
          ~else_:(fun () -> [ else_ () ]) with
  | [ r ] -> reg r
  | [] | _ :: _ :: _ -> assert false

(** Two-way conditional carrying two merged values. *)
let if2 b cond ~then_ ~else_ =
  match
    Builder.if_ b cond
      ~then_:(fun () -> let x, y = then_ () in [ x; y ])
      ~else_:(fun () -> let x, y = else_ () in [ x; y ])
  with
  | [ r1; r2 ] -> (reg r1, reg r2)
  | [] | [ _ ] | _ :: _ :: _ :: _ -> assert false

(** Address of element (row, col) in a row-major matrix at [base]. *)
let at2 b base ~row ~ncols ~col =
  Builder.add b base (Builder.add b (Builder.mul b row ncols) col)

(** Load/store of a row-major matrix element. *)
let get2 b base ~row ~ncols ~col = Builder.load b (at2 b base ~row ~ncols ~col)
let set2 b base ~row ~ncols ~col v =
  Builder.store b (at2 b base ~row ~ncols ~col) v

(** Float accumulation: sum over i in [from, until) of [f ~i]. *)
let fsum b ~from ~until ~f =
  for1 b ~from ~until ~init:(Builder.immf 0.0)
    ~body:(fun ~i acc -> Builder.fadd b acc (f ~i))

(** Integer accumulation. *)
let isum b ~from ~until ~f =
  for1 b ~from ~until ~init:(Builder.imm 0)
    ~body:(fun ~i acc -> Builder.add b acc (f ~i))

(** Round-half-away-from-zero of a float to an integer, matching the host
    codecs' [round_half_away]. *)
let round b r =
  let ge0 = Builder.fge b r (Builder.immf 0.0) in
  let up = Builder.int_of_float b (Builder.fadd b r (Builder.immf 0.5)) in
  let down =
    Builder.neg b (Builder.int_of_float b (Builder.fsub b (Builder.immf 0.5) r))
  in
  Builder.select b ge0 up down

(** Clamp an integer value into [lo, hi]. *)
let clamp b v ~lo ~hi =
  let too_low = Builder.lt b v (Builder.imm lo) in
  let v = Builder.select b too_low (Builder.imm lo) v in
  let too_high = Builder.gt b v (Builder.imm hi) in
  Builder.select b too_high (Builder.imm hi) v

(** Integer absolute value. *)
let iabs b v =
  let negv = Builder.neg b v in
  Builder.select b (Builder.lt b v (Builder.imm 0)) negv v

(** Integer min/max. *)
let imin b x y = Builder.select b (Builder.lt b x y) x y
let imax b x y = Builder.select b (Builder.gt b x y) x y
