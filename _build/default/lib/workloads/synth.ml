(** Deterministic synthetic inputs.

    The paper uses media files and datasets we do not have (mediabench
    images, audio clips, video sequences, svmlight data).  Each generator
    below produces a structured signal of the same nature — smooth regions,
    edges, periodic content, clustered points — because the value profiles
    and fault behaviour depend on signal structure, not on any specific
    file.  Distinct seeds give the distinct train vs. test inputs of
    Table I. *)

let clamp lo hi v = if v < lo then lo else if v > hi then hi else v

(** Grayscale image, row-major, values 0..255: a smooth gradient field with
    a few soft blobs and mild noise — the structure of natural photos that
    makes DCT coefficients compact. *)
let gray_image ~seed ~w ~h =
  let rng = Rng.create seed in
  let n_blobs = 3 + Rng.int rng 3 in
  let blobs =
    Array.init n_blobs (fun _ ->
      (Rng.float rng *. float_of_int w,
       Rng.float rng *. float_of_int h,
       4.0 +. (Rng.float rng *. float_of_int (min w h) /. 2.0),
       60.0 +. (Rng.float rng *. 120.0)))
  in
  let gx = Rng.float_range rng (-1.0) 1.0 in
  let gy = Rng.float_range rng (-1.0) 1.0 in
  Array.init (w * h) (fun i ->
    let x = float_of_int (i mod w) and y = float_of_int (i / w) in
    let base = 96.0 +. (gx *. x) +. (gy *. y) in
    let v =
      Array.fold_left
        (fun acc (bx, by, r, a) ->
          let d2 = (((x -. bx) ** 2.0) +. ((y -. by) ** 2.0)) /. (r *. r) in
          acc +. (a *. exp (-.d2)))
        base blobs
    in
    let noise = Rng.float_range rng (-4.0) 4.0 in
    clamp 0 255 (int_of_float (v +. noise)))

(** Interleaved RGB image (r,g,b per pixel), values 0..255. *)
let rgb_image ~seed ~w ~h =
  let r = gray_image ~seed ~w ~h in
  let g = gray_image ~seed:(seed + 101) ~w ~h in
  let b = gray_image ~seed:(seed + 202) ~w ~h in
  let out = Array.make (3 * w * h) 0 in
  for i = 0 to (w * h) - 1 do
    out.((3 * i) + 0) <- r.(i);
    out.((3 * i) + 1) <- g.(i);
    out.((3 * i) + 2) <- b.(i)
  done;
  out

(** PCM16 audio: a chord of sinusoids with an envelope plus light noise. *)
let audio ~seed ~n =
  let rng = Rng.create seed in
  let n_tones = 2 + Rng.int rng 3 in
  let tones =
    Array.init n_tones (fun _ ->
      (Rng.float_range rng 0.01 0.2,        (* angular frequency *)
       Rng.float_range rng 1000.0 6000.0,   (* amplitude *)
       Rng.float_range rng 0.0 6.28))       (* phase *)
  in
  Array.init n (fun i ->
    let t = float_of_int i in
    let envelope = 0.5 +. (0.5 *. sin (t /. float_of_int n *. 3.1)) in
    let v =
      Array.fold_left
        (fun acc (freq, amp, phase) -> acc +. (amp *. sin ((freq *. t) +. phase)))
        0.0 tones
    in
    let noise = Rng.float_range rng (-60.0) 60.0 in
    clamp (-32768) 32767 (int_of_float ((envelope *. v) +. noise)))

(** Video: [frames] grayscale frames of [w]x[h], concatenated.  A textured
    background with an object translating a little each frame — exactly the
    content a motion-estimation search exploits. *)
let video ~seed ~w ~h ~frames =
  let background = gray_image ~seed ~w ~h in
  let rng = Rng.create (seed + 7) in
  let obj_w = max 4 (w / 4) and obj_h = max 4 (h / 4) in
  let x0 = Rng.int rng (w - obj_w) and y0 = Rng.int rng (h - obj_h) in
  let dx = 1 + Rng.int rng 2 and dy = Rng.int rng 2 in
  let out = Array.make (frames * w * h) 0 in
  for f = 0 to frames - 1 do
    let ox = clamp 0 (w - obj_w) (x0 + (f * dx)) in
    let oy = clamp 0 (h - obj_h) (y0 + (f * dy)) in
    for y = 0 to h - 1 do
      for x = 0 to w - 1 do
        let inside = x >= ox && x < ox + obj_w && y >= oy && y < oy + obj_h in
        let v =
          if inside then clamp 0 255 (255 - background.((y * w) + x))
          else background.((y * w) + x)
        in
        out.((f * w * h) + (y * w) + x) <- v
      done
    done
  done;
  out

(** Gaussian point clusters for kmeans: [n] points of dimension [d] drawn
    around [k] well-separated centers.  Returns (points, true_labels). *)
let clustered_points ~seed ~n ~d ~k =
  let rng = Rng.create seed in
  let centers =
    Array.init k (fun _ -> Array.init d (fun _ -> Rng.float_range rng (-10.0) 10.0))
  in
  let points = Array.make (n * d) 0.0 in
  let labels = Array.make n 0 in
  for i = 0 to n - 1 do
    let c = i mod k in
    labels.(i) <- c;
    for j = 0 to d - 1 do
      points.((i * d) + j) <- centers.(c).(j) +. (Rng.gaussian rng *. 1.2)
    done
  done;
  (points, labels)

(** A trained linear SVM: support vectors with coefficients around a random
    separating hyperplane, plus labelled test examples.  Returns
    (support_vectors [n_sv*d], coefficients [n_sv], bias, test_points
    [n_test*d]). *)
let svm_problem ~seed ~n_sv ~n_test ~d =
  let rng = Rng.create seed in
  let w = Array.init d (fun _ -> Rng.float_range rng (-1.0) 1.0) in
  let norm = sqrt (Array.fold_left (fun a x -> a +. (x *. x)) 0.0 w) in
  let w = Array.map (fun x -> x /. norm) w in
  let bias = Rng.float_range rng (-0.5) 0.5 in
  let sample margin =
    let x = Array.init d (fun _ -> Rng.float_range rng (-3.0) 3.0) in
    let dot = ref bias in
    Array.iteri (fun j xj -> dot := !dot +. (w.(j) *. xj)) x;
    (* Push the point to the requested side with the requested margin. *)
    let side = if Rng.bool rng then 1.0 else -1.0 in
    let shift = (side *. margin) -. !dot in
    Array.mapi (fun j xj -> xj +. (shift *. w.(j))) x
  in
  let sv = Array.make (n_sv * d) 0.0 in
  let alpha = Array.make n_sv 0.0 in
  for i = 0 to n_sv - 1 do
    let x = sample (0.7 +. Rng.float rng) in
    Array.blit x 0 sv (i * d) d;
    let dot = ref bias in
    Array.iteri (fun j xj -> dot := !dot +. (w.(j) *. xj)) x;
    let label = if !dot >= 0.0 then 1.0 else -1.0 in
    alpha.(i) <- label *. (0.2 +. Rng.float rng)
  done;
  let test = Array.make (n_test * d) 0.0 in
  for i = 0 to n_test - 1 do
    let x = sample (0.3 +. (2.0 *. Rng.float rng)) in
    Array.blit x 0 test (i * d) d
  done;
  (sv, alpha, bias, test)
