open Ir

(** [mp3enc] — MP3-style audio encoder (mibench mad family).

    Per 32-sample frame: analysis transform, scalefactor extraction and
    scalar quantization into the frame stream.  The stream write pointer is
    the critical loop-carried state — a corrupted pointer shears every
    later frame, the exact failure mode of Figure 3's bitstream loop. *)

let name = "mp3enc"
let suite = "mibench"
let category = "audio"
let description = "Audio encoding (subband)"
let metric = Fidelity.Metric.psnr_spec ~peak:32768.0 30.0

let train_n = 1280
let test_n = 768
let train_desc = "train 1280-sample audio"
let test_desc = "test 768-sample audio"

let bands = Mp3_common.bands

(* Parameters: pcm, n_frames, ctab, out. Returns the stream length. *)
let build () =
  let prog = Prog.create () in
  let b = Builder.create prog ~name:Workload.entry ~n_params:4 in
  let pcm = Builder.param b 0 in
  let n_frames = Builder.param b 1 in
  let ctab = Builder.param b 2 in
  let out = Builder.param b 3 in
  let nb = Builder.imm bands in
  let coeffs = Builder.alloc b nb in
  let sp_final =
    Kutil.for1 b ~from:(Builder.imm 0) ~until:n_frames ~init:out
      ~body:(fun ~i:f sp ->
        let base = Builder.mul b f nb in
        (* Analysis transform: coeffs[k] = sum_i ctab[k][i] * pcm[base+i]. *)
        Builder.for_each b ~from:(Builder.imm 0) ~until:nb ~body:(fun ~i:k ->
          let acc =
            Kutil.fsum b ~from:(Builder.imm 0) ~until:nb ~f:(fun ~i ->
              let c = Kutil.get2 b ctab ~row:k ~ncols:nb ~col:i in
              let s =
                Builder.float_of_int b (Builder.geti b pcm (Builder.add b base i))
              in
              Builder.fmul b c s)
          in
          Builder.seti b coeffs k acc);
        (* Scalefactor: running max of |coeff| (a state variable). *)
        let scale_reg =
          Kutil.for1 b ~from:(Builder.imm 0) ~until:nb ~init:(Builder.immf 1.0)
            ~body:(fun ~i:k m ->
              let a = Builder.fabs b (Builder.geti b coeffs k) in
              Builder.select b (Builder.fgt b a m) a m)
        in
        let sf = Kutil.imax b (Kutil.round b scale_reg) (Builder.imm 1) in
        Builder.store b sp sf;
        (* Quantize each band. *)
        let sff = Builder.float_of_int b sf in
        Builder.for_each b ~from:(Builder.imm 0) ~until:nb ~body:(fun ~i:k ->
          let c = Builder.geti b coeffs k in
          let scaled =
            Builder.fmul b (Builder.fdiv b c sff)
              (Builder.immf (float_of_int Mp3_common.qmax))
          in
          let q =
            Kutil.clamp b (Kutil.round b scaled) ~lo:(-Mp3_common.qmax)
              ~hi:Mp3_common.qmax
          in
          Builder.store b
            (Builder.add b (Builder.add b sp (Builder.imm 1)) k)
            q);
        Builder.add b sp (Builder.imm Mp3_common.frame_words))
  in
  Builder.ret b (Builder.sub b sp_final out);
  Builder.finish b;
  prog

let fresh_state role =
  let n, seed =
    match role with
    | Workload.Train -> (train_n, 61)
    | Workload.Test -> (test_n, 62)
  in
  let pcm_data = Synth.audio ~seed ~n in
  let n_frames = n / bands in
  let mem = Interp.Memory.create () in
  let pcm = Interp.Memory.alloc_ints mem pcm_data in
  let ctab = Mp3_common.alloc_tables mem in
  let out_words = n_frames * Mp3_common.frame_words in
  let out = Interp.Memory.alloc mem out_words in
  let read_output (_ : Value.t option) =
    Mp3_common.host_decode (Interp.Memory.read_ints_tolerant mem out out_words)
  in
  { Faults.Campaign.mem;
    args =
      [ Value.of_int pcm; Value.of_int n_frames; Value.of_int ctab;
        Value.of_int out ];
    read_output }

let workload =
  { Workload.name; suite; category; description; train_desc; test_desc;
    metric; build; fresh_state }
