(** The benchmark suite of the paper's Table I: 13 soft-computing workloads
    across image, audio, video, computer vision and machine learning. *)

let all : Workload.t list =
  [ Jpegenc.workload;
    Jpegdec.workload;
    Tiff2bw.workload;
    Segm.workload;
    Tex_synth.workload;
    G721enc.workload;
    G721dec.workload;
    Mp3enc.workload;
    Mp3dec.workload;
    H264enc.workload;
    H264dec.workload;
    Kmeans.workload;
    Svm.workload;
  ]

let find name =
  match List.find_opt (fun (w : Workload.t) -> w.name = name) all with
  | Some w -> w
  | None ->
    invalid_arg
      (Printf.sprintf "unknown workload %S (known: %s)" name
         (String.concat ", " (List.map (fun (w : Workload.t) -> w.name) all)))

let names = List.map (fun (w : Workload.t) -> w.name) all

let by_category category =
  List.filter (fun (w : Workload.t) -> w.category = category) all
