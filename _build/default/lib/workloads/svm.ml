open Ir

(** [svm] — support-vector-machine classification (svmlight).

    The classification phase of a trained SVM with a linear kernel: for
    each test example, the decision value is the alpha-weighted sum of
    dot products against every support vector, plus the bias.  The running
    positive-class counter carries across examples.  Fidelity is the
    fraction of labels that changed (classification error, 10 %). *)

let name = "svm"
let suite = "svmlight"
let category = "machine learning"
let description = "Support vector machine"
let metric = Fidelity.Metric.class_error_spec 0.10

let dims = 8
let n_sv = 24
let train_tests = 140
let test_tests = 100
let train_desc = Printf.sprintf "train %d examples" train_tests
let test_desc = Printf.sprintf "test %d examples" test_tests

(* Parameters: sv, alpha, n_sv, d, test, n_test, bias, labels.
   Returns the number of positive classifications. *)
let build () =
  let prog = Prog.create () in
  let b = Builder.create prog ~name:Workload.entry ~n_params:8 in
  let sv = Builder.param b 0 in
  let alpha = Builder.param b 1 in
  let nsv = Builder.param b 2 in
  let d = Builder.param b 3 in
  let test = Builder.param b 4 in
  let n_test = Builder.param b 5 in
  let bias = Builder.param b 6 in
  let labels = Builder.param b 7 in
  let positives =
    Kutil.for1 b ~from:(Builder.imm 0) ~until:n_test ~init:(Builder.imm 0)
      ~body:(fun ~i:t pos ->
        let x_base = Builder.mul b t d in
        let score =
          Kutil.for1 b ~from:(Builder.imm 0) ~until:nsv ~init:bias
            ~body:(fun ~i:j acc ->
              let sv_base = Builder.mul b j d in
              let dot =
                Kutil.fsum b ~from:(Builder.imm 0) ~until:d ~f:(fun ~i:l ->
                  let a = Builder.geti b sv (Builder.add b sv_base l) in
                  let x = Builder.geti b test (Builder.add b x_base l) in
                  Builder.fmul b a x)
              in
              Builder.fadd b acc (Builder.fmul b (Builder.geti b alpha j) dot))
        in
        let positive = Builder.fge b score (Builder.immf 0.0) in
        let label = Builder.select b positive (Builder.imm 1) (Builder.imm 0) in
        Builder.seti b labels t label;
        Builder.add b pos label)
  in
  Builder.ret b positives;
  Builder.finish b;
  prog

let fresh_state role =
  let n_test, seed =
    match role with
    | Workload.Train -> (train_tests, 131)
    | Workload.Test -> (test_tests, 132)
  in
  let sv_data, alpha_data, bias, test_data =
    Synth.svm_problem ~seed ~n_sv ~n_test ~d:dims
  in
  let mem = Interp.Memory.create () in
  let sv = Interp.Memory.alloc_floats mem sv_data in
  let alpha = Interp.Memory.alloc_floats mem alpha_data in
  let test = Interp.Memory.alloc_floats mem test_data in
  let labels = Interp.Memory.alloc mem n_test in
  let read_output (_ : Value.t option) =
    Array.map float_of_int (Interp.Memory.read_ints_tolerant mem labels n_test)
  in
  { Faults.Campaign.mem;
    args =
      [ Value.of_int sv; Value.of_int alpha; Value.of_int n_sv;
        Value.of_int dims; Value.of_int test; Value.of_int n_test;
        Value.of_float bias; Value.of_int labels ];
    read_output }

let workload =
  { Workload.name; suite; category; description; train_desc; test_desc;
    metric; build; fresh_state }
