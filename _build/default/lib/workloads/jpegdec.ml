open Ir

(** [jpegdec] — JPEG image decoder (mediabench).

    The kernel consumes a block stream produced by the reference encoder:
    per block it reads the DC delta and RLE pairs (the stream read pointer
    and the DC predictor are loop-carried state variables), dequantizes,
    runs the inverse DCT, clamps and stores pixels.  A corrupted read
    pointer desynchronizes every later block — the paper's Figure 1(c)
    failure mode. *)

let name = "jpegdec"
let suite = "mediabench"
let category = "image"
let description = "A JPEG image decoder"
let metric = Fidelity.Metric.psnr_spec 30.0

let train_w, train_h = 64, 64
let test_w, test_h = 48, 48
let train_desc = Printf.sprintf "train %dx%d image" train_w train_h
let test_desc = Printf.sprintf "test %dx%d image" test_w test_h

(* Parameters: stream, out_img, width, bw, bh, ctab, qtab, zig.
   Returns the final DC predictor (a checksum of sorts). *)
let build () =
  let prog = Prog.create () in
  let b = Builder.create prog ~name:Workload.entry ~n_params:8 in
  let stream = Builder.param b 0 in
  let out_img = Builder.param b 1 in
  let width = Builder.param b 2 in
  let bw = Builder.param b 3 in
  let bh = Builder.param b 4 in
  let ctab = Builder.param b 5 in
  let qtab = Builder.param b 6 in
  let zig = Builder.param b 7 in
  let i8 = Builder.imm 8 in
  let qcoef = Builder.alloc b (Builder.imm 64) in
  let freq = Builder.alloc b (Builder.imm 64) in
  let tmp = Builder.alloc b (Builder.imm 64) in
  let n_blocks = Builder.mul b bw bh in
  let (dc_final, _rp_final) =
    Kutil.for2 b ~from:(Builder.imm 0) ~until:n_blocks
      ~init:(Builder.imm 0, stream)
      ~body:(fun ~i:blk dc_pred rp ->
        let by = Builder.sdiv b blk bw in
        let bx = Builder.srem b blk bw in
        let y0 = Builder.mul b by i8 in
        let x0 = Builder.mul b bx i8 in
        (* Clear coefficients. *)
        Builder.for_each b ~from:(Builder.imm 0) ~until:(Builder.imm 64)
          ~body:(fun ~i:k -> Builder.seti b qcoef k (Builder.imm 0));
        (* DC DPCM reconstruction: dc_pred is a state variable. *)
        let dc_delta = Builder.load b rp in
        let n_pairs = Builder.load b (Builder.add b rp (Builder.imm 1)) in
        let dc = Builder.add b dc_pred dc_delta in
        Builder.seti b qcoef (Builder.imm 0) dc;
        (* Read RLE pairs; the scan position and read pointer both carry. *)
        let pairs_start = Builder.add b rp (Builder.imm 2) in
        let (_k_final, rp') =
          Kutil.for2 b ~from:(Builder.imm 0) ~until:n_pairs
            ~init:(Builder.imm 1, pairs_start)
            ~body:(fun ~i:_ k p ->
              let run = Builder.load b p in
              let v = Builder.load b (Builder.add b p (Builder.imm 1)) in
              let k = Builder.add b k run in
              Builder.seti b qcoef k v;
              (Builder.add b k (Builder.imm 1),
               Builder.add b p (Builder.imm 2)))
        in
        (* Dequantize out of zigzag order. *)
        Builder.for_each b ~from:(Builder.imm 0) ~until:(Builder.imm 64)
          ~body:(fun ~i:k ->
            let pos = Builder.geti b zig k in
            let qc = Builder.geti b qcoef k in
            let q = Builder.geti b qtab pos in
            let f = Builder.float_of_int b (Builder.mul b qc q) in
            Builder.seti b freq pos f);
        (* IDCT pass 1: tmp[y][u] = sum_v ctab[v][y] * freq[v][u]. *)
        Builder.for_each b ~from:(Builder.imm 0) ~until:i8 ~body:(fun ~i:y ->
          Builder.for_each b ~from:(Builder.imm 0) ~until:i8 ~body:(fun ~i:u ->
            let acc =
              Kutil.fsum b ~from:(Builder.imm 0) ~until:i8 ~f:(fun ~i:v ->
                let c = Kutil.get2 b ctab ~row:v ~ncols:i8 ~col:y in
                let f = Kutil.get2 b freq ~row:v ~ncols:i8 ~col:u in
                Builder.fmul b c f)
            in
            Kutil.set2 b tmp ~row:y ~ncols:i8 ~col:u acc));
        (* IDCT pass 2 + level unshift + clamp + store. *)
        Builder.for_each b ~from:(Builder.imm 0) ~until:i8 ~body:(fun ~i:y ->
          Builder.for_each b ~from:(Builder.imm 0) ~until:i8 ~body:(fun ~i:x ->
            let acc =
              Kutil.fsum b ~from:(Builder.imm 0) ~until:i8 ~f:(fun ~i:u ->
                let c = Kutil.get2 b ctab ~row:u ~ncols:i8 ~col:x in
                let t = Kutil.get2 b tmp ~row:y ~ncols:i8 ~col:u in
                Builder.fmul b c t)
            in
            let v = Kutil.round b (Builder.fadd b acc (Builder.immf 128.0)) in
            let v = Kutil.clamp b v ~lo:0 ~hi:255 in
            Kutil.set2 b out_img ~row:(Builder.add b y0 y) ~ncols:width
              ~col:(Builder.add b x0 x) v));
        (dc, rp'))
  in
  Builder.ret b dc_final;
  Builder.finish b;
  prog

let fresh_state role =
  let w, h, seed =
    match role with
    | Workload.Train -> (train_w, train_h, 21)
    | Workload.Test -> (test_w, test_h, 22)
  in
  let pixels = Synth.gray_image ~seed ~w ~h in
  let stream_data = Jpeg_common.host_encode ~pixels ~w ~h in
  let mem = Interp.Memory.create () in
  let stream = Interp.Memory.alloc_ints mem stream_data in
  let out_img = Interp.Memory.alloc mem (w * h) in
  let ctab, qtab, zig = Jpeg_common.alloc_tables mem in
  let bw = w / 8 and bh = h / 8 in
  let read_output (_ : Value.t option) =
    Array.map float_of_int (Interp.Memory.read_ints_tolerant mem out_img (w * h))
  in
  { Faults.Campaign.mem;
    args =
      [ Value.of_int stream; Value.of_int out_img; Value.of_int w;
        Value.of_int bw; Value.of_int bh; Value.of_int ctab;
        Value.of_int qtab; Value.of_int zig ];
    read_output }

let workload =
  { Workload.name; suite; category; description; train_desc; test_desc;
    metric; build; fresh_state }
