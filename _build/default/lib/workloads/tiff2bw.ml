open Ir

(** [tiff2bw] — TIFF colour-to-grayscale converter (mibench).

    The kernel is the tool's computational core: a scanline loop applying
    the ITU-R 601 luma weights y = (77 r + 150 g + 29 b) >> 8 to every
    pixel, with a running checksum as a loop-carried state variable (the
    original tool threads strip offsets the same way). *)

let name = "tiff2bw"
let suite = "mibench"
let category = "image"
let description = "A tiff format to BW converter"
let metric = Fidelity.Metric.psnr_spec 30.0

let train_w, train_h = 72, 60
let test_w, test_h = 56, 56
let train_desc = Printf.sprintf "train %dx%d image" train_w train_h
let test_desc = Printf.sprintf "test %dx%d image" test_w test_h

(* Parameters: rgb (interleaved), width, height, out. Returns checksum. *)
let build () =
  let prog = Prog.create () in
  let b = Builder.create prog ~name:Workload.entry ~n_params:4 in
  let rgb = Builder.param b 0 in
  let width = Builder.param b 1 in
  let height = Builder.param b 2 in
  let out = Builder.param b 3 in
  let checksum =
    Kutil.for1 b ~from:(Builder.imm 0) ~until:height ~init:(Builder.imm 0)
      ~body:(fun ~i:row sum_row ->
        Kutil.for1 b ~from:(Builder.imm 0) ~until:width ~init:sum_row
          ~body:(fun ~i:col sum ->
            let idx = Builder.add b (Builder.mul b row width) col in
            let base = Builder.add b rgb (Builder.mul b idx (Builder.imm 3)) in
            let r = Builder.load b base in
            let g = Builder.load b (Builder.add b base (Builder.imm 1)) in
            let bl = Builder.load b (Builder.add b base (Builder.imm 2)) in
            let weighted =
              Builder.add b
                (Builder.add b
                   (Builder.mul b r (Builder.imm 77))
                   (Builder.mul b g (Builder.imm 150)))
                (Builder.mul b bl (Builder.imm 29))
            in
            let y = Builder.ashr b weighted (Builder.imm 8) in
            let y = Kutil.clamp b y ~lo:0 ~hi:255 in
            Builder.seti b out idx y;
            Builder.add b sum y))
  in
  Builder.ret b checksum;
  Builder.finish b;
  prog

let fresh_state role =
  let w, h, seed =
    match role with
    | Workload.Train -> (train_w, train_h, 31)
    | Workload.Test -> (test_w, test_h, 32)
  in
  let rgb_data = Synth.rgb_image ~seed ~w ~h in
  let mem = Interp.Memory.create () in
  let rgb = Interp.Memory.alloc_ints mem rgb_data in
  let out = Interp.Memory.alloc mem (w * h) in
  let read_output (_ : Value.t option) =
    Array.map float_of_int (Interp.Memory.read_ints_tolerant mem out (w * h))
  in
  { Faults.Campaign.mem;
    args =
      [ Value.of_int rgb; Value.of_int w; Value.of_int h; Value.of_int out ];
    read_output }

let workload =
  { Workload.name; suite; category; description; train_desc; test_desc;
    metric; build; fresh_state }
