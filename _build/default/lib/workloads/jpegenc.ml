open Ir

(** [jpegenc] — JPEG image encoder (mediabench).

    The kernel runs the computational core of a baseline JPEG encoder over a
    grayscale image: per 8x8 block, level shift, 2-D DCT, quantization,
    zigzag scan, DC DPCM prediction and run-length encoding into an output
    stream.  The DC predictor and the stream write pointer are loop-carried
    state variables — exactly the Huffman-state pattern the paper's
    motivation highlights for jpeg.

    Output for fidelity: the stream decoded back to pixels by the host
    reference decoder, scored with PSNR (threshold 30 dB, Table I). *)

let name = "jpegenc"
let suite = "mediabench"
let category = "image"
let description = "A JPEG image encoder"
let metric = Fidelity.Metric.psnr_spec 30.0

let train_w, train_h = 64, 64
let test_w, test_h = 48, 48
let train_desc = Printf.sprintf "train %dx%d image" train_w train_h
let test_desc = Printf.sprintf "test %dx%d image" test_w test_h

(* Parameters: img, width, bw, bh, ctab, qtab, zig, out. Returns stream
   length in words. *)
let build () =
  let prog = Prog.create () in
  let b = Builder.create prog ~name:Workload.entry ~n_params:8 in
  let img = Builder.param b 0 in
  let width = Builder.param b 1 in
  let bw = Builder.param b 2 in
  let bh = Builder.param b 3 in
  let ctab = Builder.param b 4 in
  let qtab = Builder.param b 5 in
  let zig = Builder.param b 6 in
  let out = Builder.param b 7 in
  let i8 = Builder.imm 8 in
  let shifted = Builder.alloc b (Builder.imm 64) in
  let tmp = Builder.alloc b (Builder.imm 64) in
  let freq = Builder.alloc b (Builder.imm 64) in
  let qcoef = Builder.alloc b (Builder.imm 64) in
  let n_blocks = Builder.mul b bw bh in
  let (_dc_final, sp_final) =
    Kutil.for2 b ~from:(Builder.imm 0) ~until:n_blocks
      ~init:(Builder.imm 0, out)
      ~body:(fun ~i:blk dc_pred sp ->
        let by = Builder.sdiv b blk bw in
        let bx = Builder.srem b blk bw in
        let y0 = Builder.mul b by i8 in
        let x0 = Builder.mul b bx i8 in
        (* Level shift into the block buffer. *)
        Builder.for_each b ~from:(Builder.imm 0) ~until:i8 ~body:(fun ~i:y ->
          Builder.for_each b ~from:(Builder.imm 0) ~until:i8 ~body:(fun ~i:x ->
            let p =
              Kutil.get2 b img ~row:(Builder.add b y0 y) ~ncols:width
                ~col:(Builder.add b x0 x)
            in
            let s = Builder.float_of_int b (Builder.sub b p (Builder.imm 128)) in
            Kutil.set2 b shifted ~row:y ~ncols:i8 ~col:x s));
        (* DCT pass 1: tmp[v][x] = sum_y ctab[v][y] * shifted[y][x]. *)
        Builder.for_each b ~from:(Builder.imm 0) ~until:i8 ~body:(fun ~i:v ->
          Builder.for_each b ~from:(Builder.imm 0) ~until:i8 ~body:(fun ~i:x ->
            let acc =
              Kutil.fsum b ~from:(Builder.imm 0) ~until:i8 ~f:(fun ~i:y ->
                let c = Kutil.get2 b ctab ~row:v ~ncols:i8 ~col:y in
                let s = Kutil.get2 b shifted ~row:y ~ncols:i8 ~col:x in
                Builder.fmul b c s)
            in
            Kutil.set2 b tmp ~row:v ~ncols:i8 ~col:x acc));
        (* DCT pass 2: freq[v][u] = sum_x ctab[u][x] * tmp[v][x]. *)
        Builder.for_each b ~from:(Builder.imm 0) ~until:i8 ~body:(fun ~i:v ->
          Builder.for_each b ~from:(Builder.imm 0) ~until:i8 ~body:(fun ~i:u ->
            let acc =
              Kutil.fsum b ~from:(Builder.imm 0) ~until:i8 ~f:(fun ~i:x ->
                let c = Kutil.get2 b ctab ~row:u ~ncols:i8 ~col:x in
                let t = Kutil.get2 b tmp ~row:v ~ncols:i8 ~col:x in
                Builder.fmul b c t)
            in
            Kutil.set2 b freq ~row:v ~ncols:i8 ~col:u acc));
        (* Quantize in zigzag order. *)
        Builder.for_each b ~from:(Builder.imm 0) ~until:(Builder.imm 64)
          ~body:(fun ~i:k ->
            let pos = Builder.geti b zig k in
            let f = Builder.geti b freq pos in
            let q = Builder.float_of_int b (Builder.geti b qtab pos) in
            let r = Builder.fdiv b f q in
            Builder.seti b qcoef k (Kutil.round b r));
        (* DC DPCM: state variable dc_pred. *)
        let dc = Builder.geti b qcoef (Builder.imm 0) in
        Builder.store b sp (Builder.sub b dc dc_pred);
        (* Run-length encode the 63 AC coefficients. *)
        let pairs_start = Builder.add b sp (Builder.imm 2) in
        let (_run, wp) =
          Kutil.for2 b ~from:(Builder.imm 1) ~until:(Builder.imm 64)
            ~init:(Builder.imm 0, pairs_start)
            ~body:(fun ~i:k run wp ->
              let qc = Builder.geti b qcoef k in
              let is_zero = Builder.eq b qc (Builder.imm 0) in
              Kutil.if2 b is_zero
                ~then_:(fun () -> (Builder.add b run (Builder.imm 1), wp))
                ~else_:(fun () ->
                  Builder.store b wp run;
                  Builder.store b (Builder.add b wp (Builder.imm 1)) qc;
                  (Builder.imm 0, Builder.add b wp (Builder.imm 2))))
        in
        let n_pairs =
          Builder.sdiv b (Builder.sub b wp pairs_start) (Builder.imm 2)
        in
        Builder.store b (Builder.add b sp (Builder.imm 1)) n_pairs;
        (dc, wp))
  in
  Builder.ret b (Builder.sub b sp_final out);
  Builder.finish b;
  prog

let fresh_state role =
  let w, h, seed =
    match role with
    | Workload.Train -> (train_w, train_h, 11)
    | Workload.Test -> (test_w, test_h, 12)
  in
  let pixels = Synth.gray_image ~seed ~w ~h in
  let mem = Interp.Memory.create () in
  let img = Interp.Memory.alloc_ints mem pixels in
  let ctab, qtab, zig = Jpeg_common.alloc_tables mem in
  let bw = w / 8 and bh = h / 8 in
  let out_words = bw * bh * Jpeg_common.max_block_words in
  let out = Interp.Memory.alloc mem out_words in
  let read_output ret =
    let len =
      match ret with
      | Some v when Ir.Value.is_int v ->
        max 0 (min out_words (Ir.Value.to_int v))
      | Some _ | None -> out_words
    in
    let stream = Interp.Memory.read_ints_tolerant mem out len in
    Jpeg_common.host_decode ~stream ~w ~h
  in
  { Faults.Campaign.mem;
    args =
      [ Value.of_int img; Value.of_int w; Value.of_int bw; Value.of_int bh;
        Value.of_int ctab; Value.of_int qtab; Value.of_int zig;
        Value.of_int out ];
    read_output }

let workload =
  { Workload.name; suite; category; description; train_desc; test_desc;
    metric; build; fresh_state }
