open Ir

(** [tex_synth] — texture synthesis (SD-VBS).

    Efros-Leung-style non-parametric synthesis: after seeding a border from
    the sample texture, each output pixel (raster order) copies the sample
    pixel whose causal neighbourhood best matches the already-synthesized
    neighbourhood (SSD over 4 causal neighbours).  The raster write
    position is the carried state; synthesis errors propagate, so the
    output-matrix mismatch metric (10 %) mirrors the paper. *)

let name = "tex_synth"
let suite = "SD-VBS"
let category = "computer vision"
let description = "Texture synthesis"
let metric = Fidelity.Metric.mismatch_spec 0.10

let train_sw, train_ow, train_oh = 10, 13, 13
let test_sw, test_ow, test_oh = 9, 12, 12
let train_desc = Printf.sprintf "train %dx%d sample" train_sw train_sw
let test_desc = Printf.sprintf "test %dx%d sample" test_sw test_sw

(* Causal neighbourhood offsets (dy, dx) relative to the target pixel. *)
let neighbours = [ (-1, -1); (-1, 0); (-1, 1); (0, -1) ]

(* Parameters: sample, sw, out, ow, oh. Returns a pixel checksum. *)
let build () =
  let prog = Prog.create () in
  let b = Builder.create prog ~name:Workload.entry ~n_params:5 in
  let sample = Builder.param b 0 in
  let sw = Builder.param b 1 in
  let out = Builder.param b 2 in
  let ow = Builder.param b 3 in
  let oh = Builder.param b 4 in
  (* Seed: border rows/cols tile the sample. *)
  Builder.for_each b ~from:(Builder.imm 0) ~until:oh ~body:(fun ~i:y ->
    Builder.for_each b ~from:(Builder.imm 0) ~until:ow ~body:(fun ~i:x ->
      let border =
        Builder.or_ b
          (Builder.lt b y (Builder.imm 2))
          (Builder.lt b x (Builder.imm 2))
      in
      let sy = Builder.srem b y sw in
      let sx = Builder.srem b x sw in
      let v = Kutil.get2 b sample ~row:sy ~ncols:sw ~col:sx in
      let old = Builder.imm 0 in
      Kutil.set2 b out ~row:y ~ncols:ow ~col:x
        (Builder.select b border v old)));
  (* Candidate grid bounds: cy in [1, sw-1), cx in [1, sw-2). *)
  let cy_hi = Builder.sub b sw (Builder.imm 1) in
  let cx_hi = Builder.sub b sw (Builder.imm 2) in
  let checksum =
    Kutil.for1 b ~from:(Builder.imm 2) ~until:oh ~init:(Builder.imm 0)
      ~body:(fun ~i:y sum_row ->
        Kutil.for1 b ~from:(Builder.imm 2) ~until:ow ~init:sum_row
          ~body:(fun ~i:x sum ->
            let best_v, _best_cost =
              Kutil.for2 b ~from:(Builder.imm 1) ~until:cy_hi
                ~init:(Builder.imm 0, Builder.imm max_int)
                ~body:(fun ~i:cy bv0 bc0 ->
                  Kutil.for2 b ~from:(Builder.imm 1) ~until:cx_hi
                    ~init:(bv0, bc0)
                    ~body:(fun ~i:cx bv bc ->
                      let ssd =
                        List.fold_left
                          (fun acc (dy, dx) ->
                            let oy = Builder.add b y (Builder.imm dy) in
                            let ox = Builder.add b x (Builder.imm dx) in
                            let ov = Kutil.get2 b out ~row:oy ~ncols:ow ~col:ox in
                            let sy = Builder.add b cy (Builder.imm dy) in
                            let sx = Builder.add b cx (Builder.imm dx) in
                            let sv =
                              Kutil.get2 b sample ~row:sy ~ncols:sw ~col:sx
                            in
                            let d = Builder.sub b ov sv in
                            Builder.add b acc (Builder.mul b d d))
                          (Builder.imm 0) neighbours
                      in
                      let better = Builder.lt b ssd bc in
                      let cand = Kutil.get2 b sample ~row:cy ~ncols:sw ~col:cx in
                      (Builder.select b better cand bv,
                       Builder.select b better ssd bc)))
            in
            Kutil.set2 b out ~row:y ~ncols:ow ~col:x best_v;
            Builder.add b sum best_v))
  in
  Builder.ret b checksum;
  Builder.finish b;
  prog

let fresh_state role =
  let sw, ow, oh, seed =
    match role with
    | Workload.Train -> (train_sw, train_ow, train_oh, 111)
    | Workload.Test -> (test_sw, test_ow, test_oh, 112)
  in
  let sample_data = Synth.gray_image ~seed ~w:sw ~h:sw in
  let mem = Interp.Memory.create () in
  let sample = Interp.Memory.alloc_ints mem sample_data in
  let out = Interp.Memory.alloc mem (ow * oh) in
  let read_output (_ : Value.t option) =
    Array.map float_of_int (Interp.Memory.read_ints_tolerant mem out (ow * oh))
  in
  { Faults.Campaign.mem;
    args =
      [ Value.of_int sample; Value.of_int sw; Value.of_int out;
        Value.of_int ow; Value.of_int oh ];
    read_output }

let workload =
  { Workload.name; suite; category; description; train_desc; test_desc;
    metric; build; fresh_state }
