open Ir

(** [h264dec] — H.264-style video decoder (mediabench II).

    Rebuilds the frame sequence from the reference encoder's stream:
    motion-compensated prediction from the previously reconstructed frame
    plus dequantized residuals.  The stream read pointer carries across
    blocks and frames; corrupting it desynchronizes all later blocks. *)

let name = "h264dec"
let suite = "mediabench II"
let category = "video"
let description = "H.264 video decoding"
let metric = Fidelity.Metric.psnr_spec 30.0

let train_w, train_h, train_frames = 32, 24, 3
let test_w, test_h, test_frames = 24, 24, 3
let train_desc = "train 32x24x3 video"
let test_desc = "test 24x24x3 video"

let blk = H264_common.blk
let qstep = H264_common.q

(* Parameters: stream, w, h, n_frames, out. Returns a motion checksum. *)
let build () =
  let prog = Prog.create () in
  let b = Builder.create prog ~name:Workload.entry ~n_params:5 in
  let stream = Builder.param b 0 in
  let w = Builder.param b 1 in
  let h = Builder.param b 2 in
  let n_frames = Builder.param b 3 in
  let out = Builder.param b 4 in
  let i8 = Builder.imm blk in
  let wh = Builder.mul b w h in
  (* Intra frame. *)
  Builder.for_each b ~from:(Builder.imm 0) ~until:wh ~body:(fun ~i:p ->
    let v = Kutil.clamp b (Builder.geti b stream p) ~lo:0 ~hi:255 in
    Builder.seti b out p v);
  let nbx = Builder.sdiv b w i8 in
  let nby = Builder.sdiv b h i8 in
  let n_blocks = Builder.mul b nby nbx in
  let (checksum, _rp) =
    Kutil.for2 b ~from:(Builder.imm 1) ~until:n_frames
      ~init:(Builder.imm 0, Builder.add b stream wh)
      ~body:(fun ~i:f sum_f rp_frame ->
        let prev_base =
          Builder.add b out (Builder.mul b (Builder.sub b f (Builder.imm 1)) wh)
        in
        let cur_base = Builder.add b out (Builder.mul b f wh) in
        Kutil.for2 b ~from:(Builder.imm 0) ~until:n_blocks
          ~init:(sum_f, rp_frame)
          ~body:(fun ~i:blk_i sum rp ->
            let by = Builder.sdiv b blk_i nbx in
            let bx = Builder.srem b blk_i nbx in
            let y0 = Builder.mul b by i8 in
            let x0 = Builder.mul b bx i8 in
            let mvy = Builder.load b rp in
            let mvx = Builder.load b (Builder.add b rp (Builder.imm 1)) in
            let ry = Builder.add b y0 mvy in
            let rx = Builder.add b x0 mvx in
            Builder.for_each b ~from:(Builder.imm 0) ~until:i8 ~body:(fun ~i:yy ->
              Builder.for_each b ~from:(Builder.imm 0) ~until:i8
                ~body:(fun ~i:xx ->
                  let p =
                    Kutil.get2 b prev_base ~row:(Builder.add b ry yy) ~ncols:w
                      ~col:(Builder.add b rx xx)
                  in
                  let rq =
                    Builder.load b
                      (Builder.add b rp
                         (Builder.add b (Builder.imm 2)
                            (Builder.add b (Builder.mul b yy i8) xx)))
                  in
                  let v =
                    Kutil.clamp b
                      (Builder.add b p (Builder.mul b rq (Builder.imm qstep)))
                      ~lo:0 ~hi:255
                  in
                  Kutil.set2 b cur_base ~row:(Builder.add b y0 yy) ~ncols:w
                    ~col:(Builder.add b x0 xx) v));
            (Builder.add b sum (Builder.add b (Kutil.iabs b mvy) (Kutil.iabs b mvx)),
             Builder.add b rp (Builder.imm H264_common.block_words))))
  in
  Builder.ret b checksum;
  Builder.finish b;
  prog

let fresh_state role =
  let w, h, frames, seed =
    match role with
    | Workload.Train -> (train_w, train_h, train_frames, 91)
    | Workload.Test -> (test_w, test_h, test_frames, 92)
  in
  let video_data = Synth.video ~seed ~w ~h ~frames in
  let stream_data = H264_common.host_encode ~video:video_data ~w ~h ~frames in
  let mem = Interp.Memory.create () in
  let stream = Interp.Memory.alloc_ints mem stream_data in
  let out = Interp.Memory.alloc mem (frames * w * h) in
  let read_output (_ : Value.t option) =
    Array.map float_of_int
      (Interp.Memory.read_ints_tolerant mem out (frames * w * h))
  in
  { Faults.Campaign.mem;
    args =
      [ Value.of_int stream; Value.of_int w; Value.of_int h;
        Value.of_int frames; Value.of_int out ];
    read_output }

let workload =
  { Workload.name; suite; category; description; train_desc; test_desc;
    metric; build; fresh_state }
