open Ir

(** [g721enc] — ADPCM audio encoder (mediabench g721 family).

    Waveform coding with a per-sample 4-bit code: the predicted value and
    quantizer step index are carried from sample to sample, so a single
    corrupted prediction skews the whole remaining stream.  Fidelity is the
    segmental SNR of the host-decoded code stream. *)

let name = "g721enc"
let suite = "mediabench"
let category = "audio"
let description = "Audio encoding (ADPCM)"
let metric = Fidelity.Metric.seg_snr_spec 80.0

let train_n = 2400
let test_n = 1400
let train_desc = "train 2400-sample audio"
let test_desc = "test 1400-sample audio"

(* Parameters: pcm, n, step_table, index_table, out. Returns final predictor. *)
let build () =
  let prog = Prog.create () in
  let b = Builder.create prog ~name:Workload.entry ~n_params:5 in
  let pcm = Builder.param b 0 in
  let n = Builder.param b 1 in
  let steps = Builder.param b 2 in
  let indices = Builder.param b 3 in
  let out = Builder.param b 4 in
  let (valpred_final, _index_final) =
    Kutil.for2 b ~from:(Builder.imm 0) ~until:n
      ~init:(Builder.imm 0, Builder.imm 0)
      ~body:(fun ~i valpred index ->
        let sample = Builder.geti b pcm i in
        let step = Builder.geti b steps index in
        let diff = Builder.sub b sample valpred in
        let neg = Builder.lt b diff (Builder.imm 0) in
        let sign = Builder.select b neg (Builder.imm 8) (Builder.imm 0) in
        let diff = Kutil.iabs b diff in
        (* Successive-approximation quantizer, branchless as in the C code. *)
        let vpd0 = Builder.ashr b step (Builder.imm 3) in
        let ge4 = Builder.ge b diff step in
        let code4 = Builder.select b ge4 (Builder.imm 4) (Builder.imm 0) in
        let d1 = Builder.select b ge4 (Builder.sub b diff step) diff in
        let vpd1 = Builder.select b ge4 (Builder.add b vpd0 step) vpd0 in
        let half = Builder.ashr b step (Builder.imm 1) in
        let ge2 = Builder.ge b d1 half in
        let code2 = Builder.select b ge2 (Builder.imm 2) (Builder.imm 0) in
        let d2 = Builder.select b ge2 (Builder.sub b d1 half) d1 in
        let vpd2 = Builder.select b ge2 (Builder.add b vpd1 half) vpd1 in
        let quarter = Builder.ashr b step (Builder.imm 2) in
        let ge1 = Builder.ge b d2 quarter in
        let code1 = Builder.select b ge1 (Builder.imm 1) (Builder.imm 0) in
        let vpd3 = Builder.select b ge1 (Builder.add b vpd2 quarter) vpd2 in
        let code =
          Builder.or_ b sign (Builder.or_ b code4 (Builder.or_ b code2 code1))
        in
        let vp', idx' =
          Adpcm_common.emit_predictor_update b ~valpred ~index ~indices ~sign
            ~vpdiff:vpd3 ~code
        in
        Builder.seti b out i code;
        (vp', idx'))
  in
  Builder.ret b valpred_final;
  Builder.finish b;
  prog

let fresh_state role =
  let n, seed =
    match role with
    | Workload.Train -> (train_n, 41)
    | Workload.Test -> (test_n, 42)
  in
  let pcm_data = Synth.audio ~seed ~n in
  let mem = Interp.Memory.create () in
  let pcm = Interp.Memory.alloc_ints mem pcm_data in
  let steps, indices = Adpcm_common.alloc_tables mem in
  let out = Interp.Memory.alloc mem n in
  let read_output (_ : Value.t option) =
    Adpcm_common.host_decode (Interp.Memory.read_ints_tolerant mem out n)
  in
  { Faults.Campaign.mem;
    args =
      [ Value.of_int pcm; Value.of_int n; Value.of_int steps;
        Value.of_int indices; Value.of_int out ];
    read_output }

let workload =
  { Workload.name; suite; category; description; train_desc; test_desc;
    metric; build; fresh_state }
