lib/workloads/jpeg_common.ml: Array Float Interp List
