lib/workloads/mp3_common.ml: Array Float Interp
