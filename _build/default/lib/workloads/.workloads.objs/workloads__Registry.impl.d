lib/workloads/registry.ml: G721dec G721enc H264dec H264enc Jpegdec Jpegenc Kmeans List Mp3dec Mp3enc Printf Segm String Svm Tex_synth Tiff2bw Workload
