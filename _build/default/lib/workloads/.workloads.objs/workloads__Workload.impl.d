lib/workloads/workload.ml: Faults Fidelity Format Interp Ir Printf Profiling
