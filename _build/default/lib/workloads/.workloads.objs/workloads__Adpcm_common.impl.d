lib/workloads/adpcm_common.ml: Array Builder Interp Ir Kutil
