lib/workloads/synth.ml: Array Rng
