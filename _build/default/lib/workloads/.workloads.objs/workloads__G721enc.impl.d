lib/workloads/g721enc.ml: Adpcm_common Builder Faults Fidelity Interp Ir Kutil Prog Synth Value Workload
