lib/workloads/h264_common.ml: Array
