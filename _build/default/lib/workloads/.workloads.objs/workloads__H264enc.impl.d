lib/workloads/h264enc.ml: Builder Faults Fidelity H264_common Interp Ir Kutil Prog Synth Value Workload
