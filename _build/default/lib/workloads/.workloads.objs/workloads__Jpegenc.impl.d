lib/workloads/jpegenc.ml: Builder Faults Fidelity Interp Ir Jpeg_common Kutil Printf Prog Synth Value Workload
