lib/workloads/kutil.ml: Builder Instr Ir
