lib/workloads/tex_synth.ml: Array Builder Faults Fidelity Interp Ir Kutil List Printf Prog Synth Value Workload
