lib/workloads/h264dec.ml: Array Builder Faults Fidelity H264_common Interp Ir Kutil Prog Synth Value Workload
