lib/workloads/mp3enc.ml: Builder Faults Fidelity Interp Ir Kutil Mp3_common Prog Synth Value Workload
