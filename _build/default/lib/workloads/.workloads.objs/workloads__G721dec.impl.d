lib/workloads/g721dec.ml: Adpcm_common Array Builder Faults Fidelity Interp Ir Kutil Prog Synth Value Workload
