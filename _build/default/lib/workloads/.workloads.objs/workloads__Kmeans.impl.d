lib/workloads/kmeans.ml: Array Builder Faults Fidelity Interp Ir Kutil Printf Prog Synth Value Workload
