lib/workloads/jpegdec.ml: Array Builder Faults Fidelity Interp Ir Jpeg_common Kutil Printf Prog Synth Value Workload
