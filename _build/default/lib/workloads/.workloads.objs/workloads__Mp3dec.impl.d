lib/workloads/mp3dec.ml: Array Builder Faults Fidelity Interp Ir Kutil Mp3_common Prog Synth Value Workload
