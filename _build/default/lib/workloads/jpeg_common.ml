(** Shared pieces of the JPEG encoder/decoder pair: DCT basis, quantization
    and zigzag tables, the block-stream format, and host-side reference
    codecs.

    Stream format, per 8x8 block:
      [dc_delta; n_pairs; (run, value) * n_pairs]
    where dc_delta is DPCM against the previous block's DC (a classic state
    variable), and the pairs run-length encode the non-zero AC coefficients
    in zigzag order.

    The host codecs only need *format* compatibility with the IR kernels:
    fidelity is always measured against the fault-free golden run, so both
    golden and faulty outputs pass through the same host decoder. *)

let block = 8
let coeffs = block * block

(** Orthonormal 8-point DCT-II basis: ctab.(u*8+x) = a(u)/2 * cos((2x+1)uπ/16). *)
let ctab =
  let t = Array.make coeffs 0.0 in
  for u = 0 to block - 1 do
    let alpha = if u = 0 then 1.0 /. sqrt 2.0 else 1.0 in
    for x = 0 to block - 1 do
      t.((u * block) + x) <-
        alpha /. 2.0
        *. cos ((float_of_int ((2 * x) + 1)) *. float_of_int u *. Float.pi /. 16.0)
    done
  done;
  t

(** Standard JPEG luminance quantization table (Annex K). *)
let qtab =
  [| 16; 11; 10; 16; 24; 40; 51; 61;
     12; 12; 14; 19; 26; 58; 60; 55;
     14; 13; 16; 24; 40; 57; 69; 56;
     14; 17; 22; 29; 51; 87; 80; 62;
     18; 22; 37; 56; 68; 109; 103; 77;
     24; 35; 55; 64; 81; 104; 113; 92;
     49; 64; 78; 87; 103; 121; 120; 101;
     72; 92; 95; 98; 112; 100; 103; 99 |]

(** Zigzag scan: zigzag.(k) is the block position of scan index k. *)
let zigzag =
  [| 0; 1; 8; 16; 9; 2; 3; 10; 17; 24; 32; 25; 18; 11; 4; 5;
     12; 19; 26; 33; 40; 48; 41; 34; 27; 20; 13; 6; 7; 14; 21; 28;
     35; 42; 49; 56; 57; 50; 43; 36; 29; 22; 15; 23; 30; 37; 44; 51;
     58; 59; 52; 45; 38; 31; 39; 46; 53; 60; 61; 54; 47; 55; 62; 63 |]

(** Worst-case stream words per block: dc + count + 63 pairs. *)
let max_block_words = 2 + (63 * 2)

let round_half_away r =
  if r >= 0.0 then int_of_float (r +. 0.5) else -int_of_float (0.5 -. r)

let clamp_pixel v = if v < 0 then 0 else if v > 255 then 255 else v

(* ----- host-side reference codec ----- *)

let forward_dct (shifted : float array) =
  let tmp = Array.make coeffs 0.0 in
  for v = 0 to block - 1 do
    for x = 0 to block - 1 do
      let acc = ref 0.0 in
      for y = 0 to block - 1 do
        acc := !acc +. (ctab.((v * block) + y) *. shifted.((y * block) + x))
      done;
      tmp.((v * block) + x) <- !acc
    done
  done;
  let freq = Array.make coeffs 0.0 in
  for v = 0 to block - 1 do
    for u = 0 to block - 1 do
      let acc = ref 0.0 in
      for x = 0 to block - 1 do
        acc := !acc +. (ctab.((u * block) + x) *. tmp.((v * block) + x))
      done;
      freq.((v * block) + u) <- !acc
    done
  done;
  freq

let inverse_dct (freq : float array) =
  let tmp = Array.make coeffs 0.0 in
  for y = 0 to block - 1 do
    for u = 0 to block - 1 do
      let acc = ref 0.0 in
      for v = 0 to block - 1 do
        acc := !acc +. (ctab.((v * block) + y) *. freq.((v * block) + u))
      done;
      tmp.((y * block) + u) <- !acc
    done
  done;
  let pix = Array.make coeffs 0.0 in
  for y = 0 to block - 1 do
    for x = 0 to block - 1 do
      let acc = ref 0.0 in
      for u = 0 to block - 1 do
        acc := !acc +. (ctab.((u * block) + x) *. tmp.((y * block) + u))
      done;
      pix.((y * block) + x) <- !acc
    done
  done;
  pix

(** Reference encoder: produces the stream the IR decoder consumes. *)
let host_encode ~(pixels : int array) ~w ~h =
  assert (w mod block = 0 && h mod block = 0);
  let bw = w / block and bh = h / block in
  let out = ref [] in
  let n_out = ref 0 in
  let emit v = out := v :: !out; incr n_out in
  let dc_pred = ref 0 in
  for by = 0 to bh - 1 do
    for bx = 0 to bw - 1 do
      let shifted = Array.make coeffs 0.0 in
      for y = 0 to block - 1 do
        for x = 0 to block - 1 do
          let p = pixels.(((by * block) + y) * w + (bx * block) + x) in
          shifted.((y * block) + x) <- float_of_int (p - 128)
        done
      done;
      let freq = forward_dct shifted in
      let qcoef =
        Array.init coeffs (fun k ->
          let pos = zigzag.(k) in
          round_half_away (freq.(pos) /. float_of_int qtab.(pos)))
      in
      emit (qcoef.(0) - !dc_pred);
      dc_pred := qcoef.(0);
      let pairs = ref [] in
      let run = ref 0 in
      for k = 1 to coeffs - 1 do
        if qcoef.(k) = 0 then incr run
        else begin
          pairs := (!run, qcoef.(k)) :: !pairs;
          run := 0
        end
      done;
      let pairs = List.rev !pairs in
      emit (List.length pairs);
      List.iter (fun (r, v) -> emit r; emit v) pairs
    done
  done;
  Array.of_list (List.rev !out)

(** Defensive reference decoder: never raises on a corrupted stream; used
    to turn an encoder's (possibly faulty) output back into pixels for
    fidelity scoring. *)
let host_decode ~(stream : int array) ~w ~h =
  let bw = w / block and bh = h / block in
  let len = Array.length stream in
  let rp = ref 0 in
  let next () = if !rp < len then (let v = stream.(!rp) in incr rp; v) else 0 in
  let pixels = Array.make (w * h) 0.0 in
  let dc_pred = ref 0 in
  for by = 0 to bh - 1 do
    for bx = 0 to bw - 1 do
      let qcoef = Array.make coeffs 0 in
      let dc_delta = next () in
      dc_pred := !dc_pred + dc_delta;
      qcoef.(0) <- !dc_pred;
      let n_pairs = max 0 (min 63 (next ())) in
      let k = ref 1 in
      for _ = 1 to n_pairs do
        let run = next () in
        let v = next () in
        k := !k + max 0 run;
        if !k <= 63 then qcoef.(!k) <- v;
        incr k
      done;
      let freq = Array.make coeffs 0.0 in
      for k = 0 to coeffs - 1 do
        let pos = zigzag.(k) in
        freq.(pos) <- float_of_int qcoef.(k) *. float_of_int qtab.(pos)
      done;
      let pix = inverse_dct freq in
      for y = 0 to block - 1 do
        for x = 0 to block - 1 do
          let v = round_half_away (pix.((y * block) + x) +. 128.0) in
          pixels.(((by * block) + y) * w + (bx * block) + x) <-
            float_of_int (clamp_pixel v)
        done
      done
    done
  done;
  pixels

(** Memory image shared by both kernels: the three tables. *)
let alloc_tables mem =
  let ctab_base = Interp.Memory.alloc_floats mem ctab in
  let qtab_base = Interp.Memory.alloc_ints mem qtab in
  let zig_base = Interp.Memory.alloc_ints mem zigzag in
  (ctab_base, qtab_base, zig_base)
