(** Compact frequent-range extraction — Algorithm 2 of the paper.

    Starting from the bin with the highest count, the range greedily absorbs
    the heavier neighbouring bin while the extended range still fits within
    the width threshold [r_thr].  (The paper's pseudocode loops while the
    range *exceeds* the threshold, which never extends anything; we implement
    the stated intent: "extends this bin towards left or right while the
    range size lies within a threshold".) *)

type t = {
  lo : float;
  hi : float;
  mass : int;           (** values covered by [lo, hi] *)
  coverage : float;     (** mass / total inserted values *)
}

let width r = r.hi -. r.lo

(** [extract hist ~r_thr] returns the compact frequent range, or [None] for
    an empty histogram. *)
let extract (hist : Histogram.t) ~r_thr =
  let bins = Array.of_list (Histogram.bins hist) in
  let n = Array.length bins in
  if n = 0 then None
  else begin
    (* Step 1: seed with the highest-frequency bin. *)
    let seed = ref 0 in
    for i = 1 to n - 1 do
      if bins.(i).Histogram.m > bins.(!seed).Histogram.m then seed := i
    done;
    let left = ref (!seed - 1) in
    let right = ref (!seed + 1) in
    let lo = ref bins.(!seed).Histogram.lb in
    let hi = ref bins.(!seed).Histogram.rb in
    let mass = ref bins.(!seed).Histogram.m in
    let progress = ref true in
    while !progress && (!left >= 0 || !right < n) do
      progress := false;
      let left_mass = if !left >= 0 then bins.(!left).Histogram.m else -1 in
      let right_mass = if !right < n then bins.(!right).Histogram.m else -1 in
      (* Prefer the heavier side, as in steps 6-13 of Algorithm 2. *)
      let try_left () =
        if !left >= 0 && !hi -. bins.(!left).Histogram.lb <= r_thr then begin
          lo := bins.(!left).Histogram.lb;
          mass := !mass + left_mass;
          decr left;
          progress := true;
          true
        end
        else false
      in
      let try_right () =
        if !right < n && bins.(!right).Histogram.rb -. !lo <= r_thr then begin
          hi := bins.(!right).Histogram.rb;
          mass := !mass + right_mass;
          incr right;
          progress := true;
          true
        end
        else false
      in
      if left_mass >= right_mass then begin
        if not (try_left ()) then ignore (try_right ())
      end
      else if not (try_right ()) then ignore (try_left ())
    done;
    let total = Histogram.total hist in
    let coverage =
      if total = 0 then 0.0 else float_of_int !mass /. float_of_int total
    in
    Some { lo = !lo; hi = !hi; mass = !mass; coverage }
  end
