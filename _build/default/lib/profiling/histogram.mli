(** On-line histogram of the values produced by one static instruction —
    Algorithm 1 of the paper (an adaptation of the Ben-Haim/Tom-Tov
    streaming histogram with interval bins).

    Invariants: at most [max_bins] bins, sorted by lower bound, pairwise
    disjoint, total mass equal to the number of inserted values. *)

type bin = {
  lb : float;   (** inclusive lower bound *)
  rb : float;   (** inclusive upper bound *)
  m : int;      (** number of inserted values inside [lb, rb] *)
}

type t

val default_bins : int

(** [create ~max_bins ()] — [max_bins] is the B of Algorithm 1 (paper: 5);
    must be at least 2. *)
val create : ?max_bins:int -> unit -> t

(** Insert one observed value, merging the closest pair of bins when the
    bin budget overflows. *)
val insert : t -> float -> unit

(** Bins, sorted by lower bound. *)
val bins : t -> bin list

(** Total number of inserted values. *)
val total : t -> int

val n_bins : t -> int

(** Mass of the bins entirely inside [lo, hi] (conservative). *)
val mass_within : t -> lo:float -> hi:float -> int

(** Smallest interval containing every bin, or [None] when empty. *)
val hull : t -> (float * float) option

(** Bins that are single points (lb = rb), heaviest first. *)
val point_bins : t -> bin list

val pp : Format.formatter -> t -> unit
