(** On-line histogram of the values produced by one static instruction —
    Algorithm 1 of the paper (an adaptation of the Ben-Haim/Tom-Tov
    streaming histogram with interval bins).

    The histogram keeps at most [max_bins] bins, each an inclusive interval
    [lb, rb] with a count [m].  Inserting a value either bumps an existing
    bin or adds a point bin and merges the two bins with the smallest gap
    between them. *)

type bin = {
  lb : float;
  rb : float;
  m : int;
}

type t = {
  max_bins : int;
  mutable bins : bin list;   (** sorted by [lb]; invariant: length <= max_bins *)
  mutable total : int;       (** total number of inserted values *)
}

let default_bins = 5

let create ?(max_bins = default_bins) () =
  if max_bins < 2 then invalid_arg "Histogram.create: need at least 2 bins";
  { max_bins; bins = []; total = 0 }

let bins t = t.bins
let total t = t.total
let n_bins t = List.length t.bins

(* Merge the adjacent pair with the smallest gap (rb_i .. lb_{i+1}),
   per step 7-8 of Algorithm 1. *)
let merge_closest bins =
  let arr = Array.of_list bins in
  let n = Array.length arr in
  let best = ref 0 and best_gap = ref infinity in
  for i = 0 to n - 2 do
    let gap = arr.(i + 1).lb -. arr.(i).rb in
    if gap < !best_gap then begin
      best_gap := gap;
      best := i
    end
  done;
  let merged =
    { lb = arr.(!best).lb; rb = arr.(!best + 1).rb;
      m = arr.(!best).m + arr.(!best + 1).m }
  in
  let out = ref [] in
  for i = n - 1 downto 0 do
    if i = !best then out := merged :: !out
    else if i <> !best + 1 then out := arr.(i) :: !out
  done;
  !out

let insert t v =
  t.total <- t.total + 1;
  let rec bump = function
    | [] -> None
    | b :: rest ->
      if v >= b.lb && v <= b.rb then Some ({ b with m = b.m + 1 } :: rest)
      else if v < b.lb then None
      else Option.map (fun rest' -> b :: rest') (bump rest)
  in
  match bump t.bins with
  | Some bins -> t.bins <- bins
  | None ->
    let point = { lb = v; rb = v; m = 1 } in
    let bins =
      List.sort (fun a b -> Float.compare a.lb b.lb) (point :: t.bins)
    in
    t.bins <-
      (if List.length bins > t.max_bins then merge_closest bins else bins)

(** Mass inside [lo, hi] (whole bins only, conservative). *)
let mass_within t ~lo ~hi =
  List.fold_left
    (fun acc b -> if b.lb >= lo && b.rb <= hi then acc + b.m else acc)
    0 t.bins

(** Convex hull of the observed values. *)
let hull t =
  match t.bins with
  | [] -> None
  | first :: _ ->
    let last = List.nth t.bins (List.length t.bins - 1) in
    Some (first.lb, last.rb)

(** Bins that are single points (lb = rb), sorted by decreasing mass. *)
let point_bins t =
  List.filter (fun b -> b.lb = b.rb) t.bins
  |> List.sort (fun a b -> compare b.m a.m)

let pp ppf t =
  Format.fprintf ppf "{total=%d;" t.total;
  List.iter
    (fun b -> Format.fprintf ppf " [%g,%g]:%d" b.lb b.rb b.m)
    t.bins;
  Format.fprintf ppf "}"
