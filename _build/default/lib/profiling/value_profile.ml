(** Value profiling: one histogram per static value-producing instruction,
    collected from an interpreter run on the *training* input, then turned
    into expected-value check shapes (Figure 6 of the paper).

    Profiling is the paper's one-time offline step; its cost never enters
    the reported performance overheads. *)

type kind_seen = Ints | Floats | Mixed

type entry = {
  hist : Histogram.t;
  mutable execs : int;
  mutable seen : kind_seen option;
}

type t = {
  table : (int, entry) Hashtbl.t;   (** uid -> profile entry *)
  mutable run_steps : int;
}

(** Tunables of the check-derivation heuristics. *)
type params = {
  max_bins : int;            (** B of Algorithm 1 (paper: 5) *)
  min_execs : int;           (** ignore instructions executed fewer times *)
  exact_coverage : float;    (** coverage needed for single/double checks *)
  range_coverage : float;    (** coverage needed for a range check *)
  r_thr_abs : float;         (** absolute width threshold of Algorithm 2 *)
  r_thr_rel : float;         (** relative alternative: width <= rel * scale *)
  slack : float;             (** widen accepted ranges by this fraction per
                                 side, to damp train-vs-test false positives *)
}

let default_params = {
  max_bins = 5;
  min_execs = 64;
  exact_coverage = 1.0;
  range_coverage = 1.0;
  r_thr_abs = 4096.0;
  r_thr_rel = 0.0;   (* disabled: Algorithm 2's threshold is absolute; a
                        relative rule admits arbitrarily wide, near-useless
                        ranges (kept as an ablation knob) *)
  slack = 1.0;   (* the check-tuning ablation (examples/check_tuning.ml)
                     shows this cuts train-vs-test false positives by two
                     orders of magnitude at unchanged cost and coverage *)
}

let create () = { table = Hashtbl.create 256; run_steps = 0 }

let record ?(max_bins = default_params.max_bins) t uid (v : Ir.Value.t) =
  let e =
    match Hashtbl.find_opt t.table uid with
    | Some e -> e
    | None ->
      let e = { hist = Histogram.create ~max_bins (); execs = 0; seen = None } in
      Hashtbl.replace t.table uid e;
      e
  in
  e.execs <- e.execs + 1;
  let k = if Ir.Value.is_int v then Ints else Floats in
  (match e.seen with
   | None -> e.seen <- Some k
   | Some s when s = k -> ()
   | Some Mixed -> ()
   | Some _ -> e.seen <- Some Mixed);
  Histogram.insert e.hist (Ir.Value.to_real v)

(** Profile [prog] by interpreting it; returns the profile and run result. *)
let collect ?(params = default_params) prog ~entry ~args ~mem =
  let t = create () in
  let config =
    { Interp.Machine.default_config with
      mode = Interp.Machine.Record;
      on_def = Some (fun uid v -> record ~max_bins:params.max_bins t uid v) }
  in
  let result = Interp.Machine.run ~config prog ~entry ~args ~mem in
  t.run_steps <- result.steps;
  (t, result)

let entry_of t uid = Hashtbl.find_opt t.table uid

let execs t uid =
  match entry_of t uid with
  | Some e -> e.execs
  | None -> 0

(* Reconstruct a check constant on the instruction's value domain. *)
let value_of kind_seen x =
  match kind_seen with
  | Ints -> Ir.Value.Int (Int64.of_float x)
  | Floats | Mixed -> Ir.Value.Float x

let widen_range ~params ~seen lo hi =
  let w = hi -. lo in
  let pad = (params.slack *. w) +. (match seen with Ints -> 1.0 | Floats | Mixed -> 1e-9) in
  let lo = lo -. pad and hi = hi +. pad in
  match seen with
  | Ints -> (Float.of_int (int_of_float (Float.floor lo)),
             Float.of_int (int_of_float (Float.ceil hi)))
  | Floats | Mixed -> (lo, hi)

(** Derive the expected-value check for instruction [uid], if its profile
    makes it amenable (Figure 6): a single frequent value, two frequent
    values, or a compact range. *)
let check_kind ?(params = default_params) t uid : Ir.Instr.check_kind option =
  match entry_of t uid with
  | None -> None
  | Some e ->
    if e.execs < params.min_execs then None
    else begin
      match e.seen with
      | None | Some Mixed -> None
      | Some seen ->
        let total = Histogram.total e.hist in
        let cover m = float_of_int m /. float_of_int total in
        let points = Histogram.point_bins e.hist in
        match points with
        | [ p ] when cover p.Histogram.m >= params.exact_coverage ->
          Some (Ir.Instr.Single (value_of seen p.Histogram.lb))
        | p1 :: p2 :: _
          when cover (p1.Histogram.m + p2.Histogram.m) >= params.exact_coverage ->
          Some
            (Ir.Instr.Double
               (value_of seen p1.Histogram.lb, value_of seen p2.Histogram.lb))
        | _ ->
          let scale =
            match Histogram.hull e.hist with
            | None -> 0.0
            | Some (lo, hi) -> Float.max (Float.abs lo) (Float.abs hi)
          in
          let r_thr = Float.max params.r_thr_abs (params.r_thr_rel *. scale) in
          (match Range.extract e.hist ~r_thr with
           | None -> None
           | Some r ->
             if r.coverage >= params.range_coverage
                && Range.width r <= r_thr then begin
               let lo, hi = widen_range ~params ~seen r.lo r.hi in
               Some (Ir.Instr.Range (value_of seen lo, value_of seen hi))
             end
             else None)
    end

(** All uids amenable to a check under [params]. *)
let amenable_uids ?(params = default_params) t =
  Hashtbl.fold
    (fun uid _ acc ->
      match check_kind ~params t uid with
      | Some ck -> (uid, ck) :: acc
      | None -> acc)
    t.table []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
