lib/profiling/range.ml: Array Histogram
