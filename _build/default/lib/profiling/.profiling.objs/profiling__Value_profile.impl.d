lib/profiling/value_profile.ml: Float Hashtbl Histogram Int64 Interp Ir List Range
