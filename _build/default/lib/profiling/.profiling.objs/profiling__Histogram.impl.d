lib/profiling/histogram.ml: Array Float Format List Option
