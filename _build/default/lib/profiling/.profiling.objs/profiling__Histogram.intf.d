lib/profiling/histogram.mli: Format
