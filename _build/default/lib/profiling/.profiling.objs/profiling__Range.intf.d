lib/profiling/range.mli: Histogram
