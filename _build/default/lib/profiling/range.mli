(** Compact frequent-range extraction — Algorithm 2 of the paper.

    Starting from the histogram bin with the highest count, the range
    greedily absorbs the heavier neighbouring bin while the extended range
    still fits within the width threshold. *)

type t = {
  lo : float;
  hi : float;
  mass : int;        (** inserted values covered by [lo, hi] *)
  coverage : float;  (** mass / total inserted values *)
}

val width : t -> float

(** [extract hist ~r_thr] returns the compact frequent range of [hist]
    under the absolute width threshold [r_thr], or [None] for an empty
    histogram.  The result always lies within the histogram hull. *)
val extract : Histogram.t -> r_thr:float -> t option
