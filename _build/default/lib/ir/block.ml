(** Basic blocks: a label, phi nodes, a straight-line body, one terminator. *)

type t = {
  label : string;
  mutable phis : Instr.phi list;
  mutable body : Instr.t array;
  mutable term : Instr.terminator;
}

let create ~label = {
  label;
  phis = [];
  body = [||];
  term = Instr.Ret None;
}

let successors t = Instr.terminator_targets t.term

(** Insert [instrs] immediately after the body instruction with uid
    [after_uid].  Raises [Not_found] if the uid is not in this block. *)
let insert_after t ~after_uid instrs =
  let idx = ref (-1) in
  Array.iteri (fun i (ins : Instr.t) -> if ins.uid = after_uid then idx := i) t.body;
  if !idx < 0 then raise Not_found;
  let n = Array.length t.body in
  let extra = Array.of_list instrs in
  let out = Array.make (n + Array.length extra) t.body.(0) in
  Array.blit t.body 0 out 0 (!idx + 1);
  Array.blit extra 0 out (!idx + 1) (Array.length extra);
  Array.blit t.body (!idx + 1) out (!idx + 1 + Array.length extra) (n - !idx - 1);
  t.body <- out

(** Insert [instrs] immediately before the body instruction with uid
    [before_uid].  Raises [Not_found] if the uid is not in this block. *)
let insert_before t ~before_uid instrs =
  let idx = ref (-1) in
  Array.iteri (fun i (ins : Instr.t) -> if ins.uid = before_uid then idx := i) t.body;
  if !idx < 0 then raise Not_found;
  let n = Array.length t.body in
  let extra = Array.of_list instrs in
  let out = Array.make (n + Array.length extra) t.body.(0) in
  Array.blit t.body 0 out 0 !idx;
  Array.blit extra 0 out !idx (Array.length extra);
  Array.blit t.body !idx out (!idx + Array.length extra) (n - !idx);
  t.body <- out

(** Append instructions at the end of the body (before the terminator). *)
let append t instrs =
  t.body <- Array.append t.body (Array.of_list instrs)

let instr_count t = List.length t.phis + Array.length t.body
