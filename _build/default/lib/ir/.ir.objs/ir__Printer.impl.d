lib/ir/printer.ml: Array Block Format Func Instr List Opcode Printf Prog Value
