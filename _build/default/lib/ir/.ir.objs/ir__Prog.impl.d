lib/ir/prog.ml: Array Func Instr List Printf
