lib/ir/parser.ml: Array Block Format Func Hashtbl Instr Int64 List Opcode Prog Str_split String Value Verifier
