lib/ir/builder.ml: Array Block Func Instr List Opcode Printf Prog Value
