lib/ir/instr.ml: List Opcode Value
