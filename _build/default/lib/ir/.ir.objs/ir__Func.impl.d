lib/ir/func.ml: Array Block Hashtbl Instr List Printf
