lib/ir/value.ml: Float Format Int64
