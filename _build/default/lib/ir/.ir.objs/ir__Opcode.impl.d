lib/ir/opcode.ml: Float Int64 Value
