lib/ir/verifier.ml: Array Block Format Func Hashtbl Instr List Prog String
