(** Functions: named parameters, a set of labelled blocks, one entry block. *)

type t = {
  name : string;
  params : Instr.reg list;
  entry : string;
  mutable blocks : Block.t list;       (** in layout order; entry first *)
  index : (string, Block.t) Hashtbl.t;
}

let create ~name ~params ~entry_label =
  let entry = Block.create ~label:entry_label in
  let index = Hashtbl.create 16 in
  Hashtbl.replace index entry_label entry;
  { name; params; entry = entry_label; blocks = [ entry ]; index }

let find_block t label =
  match Hashtbl.find_opt t.index label with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "%s: no block %S" t.name label)

let mem_block t label = Hashtbl.mem t.index label

let add_block t label =
  if Hashtbl.mem t.index label then
    invalid_arg (Printf.sprintf "%s: duplicate block %S" t.name label);
  let b = Block.create ~label in
  Hashtbl.replace t.index label b;
  t.blocks <- t.blocks @ [ b ];
  b

let entry_block t = find_block t t.entry

let iter_blocks f t = List.iter f t.blocks

(** All instructions (phis excluded) in layout order. *)
let iter_instrs f t =
  List.iter (fun (b : Block.t) -> Array.iter f b.body) t.blocks

let iter_phis f t =
  List.iter
    (fun (b : Block.t) -> List.iter (fun phi -> f b phi) b.phis)
    t.blocks

(** Static instruction count: phis + body instructions of every block. *)
let instr_count t =
  List.fold_left (fun acc b -> acc + Block.instr_count b) 0 t.blocks

(** Predecessor map: label -> labels of blocks that branch to it. *)
let predecessors t =
  let preds = Hashtbl.create 16 in
  List.iter (fun (b : Block.t) -> Hashtbl.replace preds b.label []) t.blocks;
  List.iter
    (fun (b : Block.t) ->
      List.iter
        (fun succ ->
          let old = try Hashtbl.find preds succ with Not_found -> [] in
          Hashtbl.replace preds succ (b.label :: old))
        (Block.successors b))
    t.blocks;
  preds
