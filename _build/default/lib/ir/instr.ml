(** IR instructions.

    The IR is in SSA form: each value-producing instruction defines exactly
    one virtual register.  Phi nodes are kept separately at block heads (see
    {!Block}), everything else appears in the block body, and each block ends
    with exactly one terminator.

    [uid]s identify the static instruction across program transformations and
    are the keys of value-profiling histograms; transformation passes mint
    fresh uids for inserted instructions so profiles never alias. *)

type reg = int

type operand =
  | Reg of reg
  | Imm of Value.t

(** Shape of an expected-value check, per Figure 6 of the paper. *)
type check_kind =
  | Single of Value.t                (** one frequently generated value *)
  | Double of Value.t * Value.t      (** two frequently generated values *)
  | Range of Value.t * Value.t       (** compact range [lo, hi], inclusive *)

(** Provenance tag carried for static statistics (Figure 10) and for the
    SWDetect attribution in fault-injection reports. *)
type origin =
  | From_source            (** present in the original program *)
  | Duplicated of int      (** clone of instruction [uid] *)
  | Check_insertion        (** a check added by a protection pass *)

type kind =
  | Binop of Opcode.binop * operand * operand
  | Unop of Opcode.unop * operand
  | Icmp of Opcode.icmp * operand * operand
  | Fcmp of Opcode.fcmp * operand * operand
  | Select of operand * operand * operand  (** cond, if-true, if-false *)
  | Const of Value.t
  | Load of operand                        (** word address *)
  | Store of operand * operand             (** word address, value *)
  | Alloc of operand                       (** size in words; defines base *)
  | Call of string * operand list
  | Dup_check of operand * operand         (** original, duplicate *)
  | Value_check of check_kind * operand

type t = {
  uid : int;
  dest : reg option;
  kind : kind;
  origin : origin;
}

type terminator =
  | Ret of operand option
  | Jmp of string
  | Br of operand * string * string        (** cond, if-true, if-false *)

(** A phi node: [dest = phi (label_i, operand_i)].  Incoming edges are keyed
    by predecessor block label. *)
type phi = {
  phi_uid : int;
  phi_dest : reg;
  mutable incoming : (string * operand) list;
  phi_origin : origin;
}

let defines t = t.dest

(** Operands read by an instruction, in syntactic order. *)
let operands t =
  match t.kind with
  | Binop (_, a, b) | Icmp (_, a, b) | Fcmp (_, a, b) | Store (a, b)
  | Dup_check (a, b) -> [ a; b ]
  | Unop (_, a) | Load a | Alloc a | Value_check (_, a) -> [ a ]
  | Select (c, a, b) -> [ c; a; b ]
  | Const _ -> []
  | Call (_, args) -> args

(** Registers read by an instruction. *)
let uses t =
  List.filter_map (function Reg r -> Some r | Imm _ -> None) (operands t)

(** Rebuild an instruction with operands rewritten by [f]. *)
let map_operands f t =
  let kind =
    match t.kind with
    | Binop (op, a, b) -> Binop (op, f a, f b)
    | Unop (op, a) -> Unop (op, f a)
    | Icmp (op, a, b) -> Icmp (op, f a, f b)
    | Fcmp (op, a, b) -> Fcmp (op, f a, f b)
    | Select (c, a, b) -> Select (f c, f a, f b)
    | Const v -> Const v
    | Load a -> Load (f a)
    | Store (a, v) -> Store (f a, f v)
    | Alloc n -> Alloc (f n)
    | Call (name, args) -> Call (name, List.map f args)
    | Dup_check (a, b) -> Dup_check (f a, f b)
    | Value_check (ck, a) -> Value_check (ck, f a)
  in
  { t with kind }

(** Does this instruction produce a data value eligible for value profiling?
    Loads are included: the paper's motivating example range-checks a value
    loaded from a lookup table. *)
let produces_value t =
  match t.kind, t.dest with
  | (Binop _ | Unop _ | Load _ | Select _), Some _ -> true
  | (Icmp _ | Fcmp _ | Const _ | Alloc _ | Call _), _ -> false
  | (Store _ | Dup_check _ | Value_check _), _ -> false
  | (Binop _ | Unop _ | Load _ | Select _), None -> false

(** Side-effecting or detection instructions that a pass must never clone. *)
let has_side_effect t =
  match t.kind with
  | Store _ | Call _ | Alloc _ | Dup_check _ | Value_check _ -> true
  | Binop _ | Unop _ | Icmp _ | Fcmp _ | Select _ | Const _ | Load _ -> false

let is_check t =
  match t.kind with
  | Dup_check _ | Value_check _ -> true
  | Binop _ | Unop _ | Icmp _ | Fcmp _ | Select _ | Const _
  | Load _ | Store _ | Alloc _ | Call _ -> false

let is_duplicate t =
  match t.origin with
  | Duplicated _ -> true
  | From_source | Check_insertion -> false

let terminator_targets = function
  | Ret _ -> []
  | Jmp l -> [ l ]
  | Br (_, t, f) -> [ t; f ]

let check_passes kind v =
  match kind with
  | Single c -> Value.equal v c
  | Double (c1, c2) -> Value.equal v c1 || Value.equal v c2
  | Range (lo, hi) -> Value.compare lo v <= 0 && Value.compare v hi <= 0
