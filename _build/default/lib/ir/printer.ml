(** Human-readable textual form of the IR, LLVM-flavoured. *)

open Format

let pp_operand ppf = function
  | Instr.Reg r -> fprintf ppf "%%r%d" r
  | Instr.Imm v -> Value.pp ppf v

(** Stable textual key of an operand, used by value-numbering passes. *)
let operand_key = function
  | Instr.Reg r -> Printf.sprintf "r%d" r
  | Instr.Imm v -> Value.to_string v

let pp_check_kind ppf = function
  | Instr.Single v -> fprintf ppf "single %a" Value.pp v
  | Instr.Double (a, b) -> fprintf ppf "double %a, %a" Value.pp a Value.pp b
  | Instr.Range (lo, hi) -> fprintf ppf "range [%a, %a]" Value.pp lo Value.pp hi

let pp_origin ppf = function
  | Instr.From_source -> ()
  | Instr.Duplicated uid -> fprintf ppf "  ; dup of #%d" uid
  | Instr.Check_insertion -> fprintf ppf "  ; check"

let pp_kind ppf = function
  | Instr.Binop (op, a, b) ->
    fprintf ppf "%s %a, %a" (Opcode.binop_name op) pp_operand a pp_operand b
  | Instr.Unop (op, a) -> fprintf ppf "%s %a" (Opcode.unop_name op) pp_operand a
  | Instr.Icmp (op, a, b) ->
    fprintf ppf "icmp %s %a, %a" (Opcode.icmp_name op) pp_operand a pp_operand b
  | Instr.Fcmp (op, a, b) ->
    fprintf ppf "fcmp %s %a, %a" (Opcode.fcmp_name op) pp_operand a pp_operand b
  | Instr.Select (c, a, b) ->
    fprintf ppf "select %a, %a, %a" pp_operand c pp_operand a pp_operand b
  | Instr.Const v -> fprintf ppf "const %a" Value.pp v
  | Instr.Load a -> fprintf ppf "load %a" pp_operand a
  | Instr.Store (a, v) -> fprintf ppf "store %a, %a" pp_operand a pp_operand v
  | Instr.Alloc n -> fprintf ppf "alloc %a" pp_operand n
  | Instr.Call (name, args) ->
    fprintf ppf "call @%s(%a)" name
      (pp_print_list ~pp_sep:(fun ppf () -> fprintf ppf ", ") pp_operand)
      args
  | Instr.Dup_check (a, b) ->
    fprintf ppf "dup_check %a == %a" pp_operand a pp_operand b
  | Instr.Value_check (ck, a) ->
    fprintf ppf "value_check %a in %a" pp_operand a pp_check_kind ck

let pp_instr ppf (ins : Instr.t) =
  (match ins.dest with
   | Some r -> fprintf ppf "  %%r%d = %a" r pp_kind ins.kind
   | None -> fprintf ppf "  %a" pp_kind ins.kind);
  fprintf ppf "    ; #%d%a" ins.uid pp_origin ins.origin

let pp_phi ppf (phi : Instr.phi) =
  let pp_in ppf (lbl, op) = fprintf ppf "[%s: %a]" lbl pp_operand op in
  fprintf ppf "  %%r%d = phi %a    ; #%d%a" phi.phi_dest
    (pp_print_list ~pp_sep:(fun ppf () -> fprintf ppf ", ") pp_in)
    phi.incoming phi.phi_uid pp_origin phi.phi_origin

let pp_terminator ppf = function
  | Instr.Ret None -> fprintf ppf "  ret"
  | Instr.Ret (Some v) -> fprintf ppf "  ret %a" pp_operand v
  | Instr.Jmp l -> fprintf ppf "  jmp %s" l
  | Instr.Br (c, l1, l2) ->
    fprintf ppf "  br %a, %s, %s" pp_operand c l1 l2

let pp_block ppf (b : Block.t) =
  fprintf ppf "%s:@\n" b.label;
  List.iter (fun phi -> fprintf ppf "%a@\n" pp_phi phi) b.phis;
  Array.iter (fun ins -> fprintf ppf "%a@\n" pp_instr ins) b.body;
  fprintf ppf "%a@\n" pp_terminator b.term

let pp_func ppf (f : Func.t) =
  fprintf ppf "func @%s(%a) {@\n" f.name
    (pp_print_list ~pp_sep:(fun ppf () -> fprintf ppf ", ")
       (fun ppf r -> fprintf ppf "%%r%d" r))
    f.params;
  List.iter (fun b -> pp_block ppf b) f.blocks;
  fprintf ppf "}@\n"

let pp_prog ppf (p : Prog.t) =
  List.iter (fun f -> fprintf ppf "%a@\n" pp_func f) p.funcs

let prog_to_string p = asprintf "%a" pp_prog p
let func_to_string f = asprintf "%a" pp_func f
