(** Convenience layer for constructing SSA programs.

    The builder maintains a current insertion block and offers structured
    [loop] / [if_] combinators that create the phi nodes, so that workload
    kernels read like straight-line code while still producing honest SSA
    with loop-carried phis — the very thing the paper's state-variable
    analysis looks for. *)

type t = {
  prog : Prog.t;
  func : Func.t;
  mutable cur : Block.t;
  mutable pending : Instr.t list;   (* reversed body of [cur] *)
  mutable terminated : bool;
  mutable label_counter : int;
}

let create prog ~name ~n_params =
  let func = Prog.add_func prog ~name ~n_params ~entry_label:"entry" in
  { prog; func; cur = Func.entry_block func; pending = []; terminated = false;
    label_counter = 0 }

let param t i = Instr.Reg (List.nth t.func.params i)

let imm n = Instr.Imm (Value.of_int n)
let immf f = Instr.Imm (Value.of_float f)

let fresh_label t prefix =
  t.label_counter <- t.label_counter + 1;
  Printf.sprintf "%s%d" prefix t.label_counter

let flush t =
  if t.pending <> [] then begin
    t.cur.body <- Array.append t.cur.body (Array.of_list (List.rev t.pending));
    t.pending <- []
  end

let current_label t = t.cur.label

let terminate t term =
  if t.terminated then
    invalid_arg (Printf.sprintf "block %S already terminated" t.cur.label);
  flush t;
  t.cur.term <- term;
  t.terminated <- true

let start_block t label =
  if not t.terminated then
    invalid_arg
      (Printf.sprintf "starting %S while %S lacks a terminator" label t.cur.label);
  flush t;
  let b = Func.add_block t.func label in
  t.cur <- b;
  t.terminated <- false

let emit t ~dest kind =
  if t.terminated then
    invalid_arg (Printf.sprintf "emitting into terminated block %S" t.cur.label);
  let uid = Prog.fresh_uid t.prog in
  t.pending <- { Instr.uid; dest; kind; origin = Instr.From_source } :: t.pending

let value t kind =
  let r = Prog.fresh_reg t.prog in
  emit t ~dest:(Some r) kind;
  Instr.Reg r

(* Arithmetic helpers. *)
let binop t op a b = value t (Instr.Binop (op, a, b))
let add t a b = binop t Opcode.Add a b
let sub t a b = binop t Opcode.Sub a b
let mul t a b = binop t Opcode.Mul a b
let sdiv t a b = binop t Opcode.Sdiv a b
let srem t a b = binop t Opcode.Srem a b
let and_ t a b = binop t Opcode.And a b
let or_ t a b = binop t Opcode.Or a b
let xor t a b = binop t Opcode.Xor a b
let shl t a b = binop t Opcode.Shl a b
let lshr t a b = binop t Opcode.Lshr a b
let ashr t a b = binop t Opcode.Ashr a b
let fadd t a b = binop t Opcode.Fadd a b
let fsub t a b = binop t Opcode.Fsub a b
let fmul t a b = binop t Opcode.Fmul a b
let fdiv t a b = binop t Opcode.Fdiv a b

let unop t op a = value t (Instr.Unop (op, a))
let neg t a = unop t Opcode.Neg a
let fneg t a = unop t Opcode.Fneg a
let float_of_int t a = unop t Opcode.Float_of_int a
let int_of_float t a = unop t Opcode.Int_of_float a
let fsqrt t a = unop t Opcode.Fsqrt a
let fabs t a = unop t Opcode.Fabs a

let icmp t op a b = value t (Instr.Icmp (op, a, b))
let fcmp t op a b = value t (Instr.Fcmp (op, a, b))
let eq t a b = icmp t Opcode.Ieq a b
let ne t a b = icmp t Opcode.Ine a b
let lt t a b = icmp t Opcode.Islt a b
let le t a b = icmp t Opcode.Isle a b
let gt t a b = icmp t Opcode.Isgt a b
let ge t a b = icmp t Opcode.Isge a b
let flt t a b = fcmp t Opcode.Flt a b
let fle t a b = fcmp t Opcode.Fle a b
let fgt t a b = fcmp t Opcode.Fgt a b
let fge t a b = fcmp t Opcode.Fge a b

let select t c a b = value t (Instr.Select (c, a, b))
let const t v = value t (Instr.Const v)
let load t addr = value t (Instr.Load addr)
let store t addr v = emit t ~dest:None (Instr.Store (addr, v))
let alloc t n = value t (Instr.Alloc n)
let call t name args = value t (Instr.Call (name, args))
let call_void t name args = emit t ~dest:None (Instr.Call (name, args))

(* Array element access with word-addressed memory. *)
let geti t base i = load t (add t base i)
let seti t base i v = store t (add t base i) v

let ret t v = terminate t (Instr.Ret (Some v))
let ret_void t = terminate t (Instr.Ret None)
let jmp t label = terminate t (Instr.Jmp label)
let br t cond ~if_true ~if_false = terminate t (Instr.Br (cond, if_true, if_false))

let mk_phi t ~incoming =
  let r = Prog.fresh_reg t.prog in
  let phi = { Instr.phi_uid = Prog.fresh_uid t.prog; phi_dest = r; incoming;
              phi_origin = Instr.From_source } in
  r, phi

(** [loop t ~init ~cond ~body] builds a while-style loop with one loop-carried
    phi per element of [init].  [cond] and [body] receive the phi registers;
    [body] returns the next-iteration values.  Both callbacks may create
    nested control flow.  Returns the phi registers, whose values after the
    loop are those of the final iteration. *)
let loop t ~init ~cond ~body =
  let header_lbl = fresh_label t "loop_head" in
  let body_lbl = fresh_label t "loop_body" in
  let exit_lbl = fresh_label t "loop_exit" in
  let pre_lbl = current_label t in
  jmp t header_lbl;
  start_block t header_lbl;
  let header = t.cur in
  let phis =
    List.map (fun init_op -> mk_phi t ~incoming:[ (pre_lbl, init_op) ]) init
  in
  header.phis <- List.map snd phis;
  let phi_regs = List.map fst phis in
  let c = cond phi_regs in
  br t c ~if_true:body_lbl ~if_false:exit_lbl;
  start_block t body_lbl;
  let next = body phi_regs in
  if List.length next <> List.length init then
    invalid_arg "loop: body must return as many values as init";
  let latch_lbl = current_label t in
  jmp t header_lbl;
  List.iter2
    (fun (_, phi) next_op ->
      phi.Instr.incoming <- phi.Instr.incoming @ [ (latch_lbl, next_op) ])
    phis next;
  start_block t exit_lbl;
  phi_regs

(** Counted ascending loop: index runs over [from, until) by [step].
    Returns the final values of the carried variables. *)
let for_up t ?(step = imm 1) ~from ~until ~carried ~body () =
  let results =
    loop t
      ~init:(from :: carried)
      ~cond:(fun regs ->
        match regs with
        | i :: _ -> icmp t Opcode.Islt (Reg i) until
        | [] -> assert false)
      ~body:(fun regs ->
        match regs with
        | i :: rest ->
          let next_carried = body ~i:(Instr.Reg i) rest in
          add t (Reg i) step :: next_carried
        | [] -> assert false)
  in
  match results with
  | _ :: carried_out -> carried_out
  | [] -> assert false

(** Simple counted loop with no carried values. *)
let for_each t ~from ~until ~body =
  let (_ : Instr.reg list) =
    for_up t ~from ~until ~carried:[] ~body:(fun ~i regs ->
      match regs with
      | [] -> body ~i; []
      | _ :: _ -> assert false) ()
  in
  ()

(** Structured conditional producing merged values via phis. *)
let if_ t cond ~then_ ~else_ =
  let then_lbl = fresh_label t "if_then" in
  let else_lbl = fresh_label t "if_else" in
  let merge_lbl = fresh_label t "if_merge" in
  br t cond ~if_true:then_lbl ~if_false:else_lbl;
  start_block t then_lbl;
  let then_vals = then_ () in
  let then_end = current_label t in
  jmp t merge_lbl;
  start_block t else_lbl;
  let else_vals = else_ () in
  let else_end = current_label t in
  if List.length then_vals <> List.length else_vals then
    invalid_arg "if_: branches must return the same number of values";
  jmp t merge_lbl;
  start_block t merge_lbl;
  let merge = t.cur in
  let phis =
    List.map2
      (fun tv ev -> mk_phi t ~incoming:[ (then_end, tv); (else_end, ev) ])
      then_vals else_vals
  in
  merge.phis <- List.map snd phis;
  List.map fst phis

(** Finish construction of the current function. *)
let finish t =
  if not t.terminated then
    invalid_arg
      (Printf.sprintf "function %S: block %S lacks a terminator" t.func.name
         t.cur.label);
  flush t
