(** Substring splitting helper used by the IR parser (the stdlib only
    splits on single characters). *)

(** [split_on_string sep s] splits [s] on every non-overlapping occurrence
    of [sep]. *)
let split_on_string sep s =
  let sep_len = String.length sep in
  if sep_len = 0 then invalid_arg "split_on_string: empty separator";
  let rec go start acc =
    let rec find i =
      if i + sep_len > String.length s then None
      else if String.sub s i sep_len = sep then Some i
      else find (i + 1)
    in
    match find start with
    | Some i ->
      go (i + sep_len) (String.sub s start (i - start) :: acc)
    | None -> List.rev (String.sub s start (String.length s - start) :: acc)
  in
  go 0 []
